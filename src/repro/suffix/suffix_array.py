"""High-level suffix array facade used by the RLZ factorizer.

:class:`SuffixArray` wraps a byte string (typically the RLZ dictionary) and
its suffix array, and exposes the two operations the paper's algorithms in
Figure 1 rely on:

* :meth:`SuffixArray.refine` — the ``Refine`` function: given an interval
  ``[lb, rb]`` of suffixes whose first ``offset`` characters match the
  pattern so far, narrow it to the sub-interval whose next character equals
  a given byte.
* :meth:`SuffixArray.longest_match` — the inner loop of ``Factor``: the
  longest prefix of a query that occurs anywhere in the indexed text,
  returned as a (position, length) pair.

Two execution modes are provided:

* the *faithful* mode (``accelerated=False``) follows the paper's pseudo-code
  exactly: one binary-search refinement per matched character;
* the *accelerated* mode (default) produces the identical greedy parse but
  advances eight characters per step where possible, by binary searching
  over precomputed 64-bit suffix keys with ``numpy.searchsorted`` and
  falling back to per-character refinement for the final partial step.  The
  ablation benchmark verifies that both modes emit byte-identical factor
  streams and measures the speed difference.

The accelerated mode additionally maintains a *jump-start index* (enabled by
default, see the ``jump_start`` parameter) mapping the 8-byte key of every
suffix to its precomputed suffix-array interval.  The first step of every
``longest_match`` then starts inside the exact interval that a
``searchsorted`` over the full key array would reach, in O(1) instead of
O(log n).  A companion 4-byte index jump-starts short factors, and a
256-entry first-byte interval table plays the same role for the
per-character fallback.  All are derived from the level-0 keys in one
vectorized numpy pass and change no parse.

Two jump-index representations exist.  Small texts (at most
``_SMALL_TEXT_MAX`` bytes) default to Python hash dicts — the fastest probe,
but on the order of a hundred bytes per distinct key.  Larger texts default
to the :class:`repro.suffix.jump_index.CompactJumpIndex` — flat numpy arrays
probed through memoryviews at ~10 bytes per distinct key — so *multi-MB
dictionaries*, the regime the paper's RLZ design actually targets, get
jump-start acceleration instead of silently falling back to a binary search
over the full key array (the pre-PR-2 behaviour).  ``jump_start`` accepts
``"auto"`` (the size-based default just described), ``"dict"``,
``"compact"`` or ``"off"``; the parse is identical under every mode.
"""

from __future__ import annotations

import os
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from .doubling import suffix_array_doubling
from .jump_index import CompactJumpIndex
from .sais import sais

__all__ = ["SuffixArray", "SuffixInterval"]

_KEY_WIDTH = 8  # bytes folded into one uint64 key per acceleration step


@dataclass(frozen=True)
class SuffixInterval:
    """An inclusive suffix-array interval ``[lb, rb]``.

    ``is_empty`` is true when the interval contains no suffixes
    (``lb > rb``), mirroring the paper's "no longer a valid interval" check.
    """

    lb: int
    rb: int

    @property
    def is_empty(self) -> bool:
        return self.lb > self.rb

    @property
    def size(self) -> int:
        return 0 if self.is_empty else self.rb - self.lb + 1


_EMPTY_INTERVAL = SuffixInterval(0, -1)


class SuffixArray:
    """Suffix array over a byte string with interval-refinement search.

    Parameters
    ----------
    text:
        The text to index (the RLZ dictionary in normal use).
    algorithm:
        ``"doubling"`` (default) uses the numpy prefix-doubling construction;
        ``"sais"`` uses the pure-Python linear-time SA-IS construction.
    accelerated:
        Enable the 8-byte-key acceleration of :meth:`longest_match`.  The
        parse produced is identical either way; disabling it gives the
        paper's literal per-character algorithm.
    jump_start:
        Configure the k-gram jump-start index (first 8-byte key of every
        suffix -> its suffix-array interval) that lets each
        ``longest_match`` skip the initial binary search over the full
        array.  ``True`` (default) selects ``"auto"``: a hash dict for
        texts up to ``_SMALL_TEXT_MAX`` bytes, the compact numpy index for
        anything larger.  ``"dict"`` and ``"compact"`` force one
        representation regardless of size (the dict probes faster but
        costs ~100 B per distinct key, so it is an opt-in for texts where
        that is affordable); ``False``/``"off"`` disables the index.  Only
        meaningful when ``accelerated`` is true; the parse is identical
        under every setting.
    """

    #: Interval sizes at or below this threshold are scanned candidate by
    #: candidate instead of refined further; with a handful of candidates the
    #: direct scan is both simpler and faster.  (Measured optimum with the
    #: first-byte prefilter in ``_scan_interval``; the chosen switch-over
    #: point never changes the parse, only which code path computes it.)
    _SCAN_THRESHOLD = 4

    #: Valid ``jump_start`` mode strings (``True`` -> "auto", ``False`` -> "off").
    _JUMP_MODES = ("auto", "dict", "compact", "off")

    def __init__(
        self,
        text: bytes,
        algorithm: str = "doubling",
        accelerated: bool = True,
        jump_start: Union[bool, str] = True,
    ) -> None:
        if not isinstance(text, (bytes, bytearray)):
            raise TypeError("SuffixArray requires a bytes-like text")
        self._text = bytes(text)
        self._n = len(self._text)
        if algorithm == "doubling":
            self._sa = suffix_array_doubling(self._text)
        elif algorithm == "sais":
            self._sa = np.asarray(sais(self._text), dtype=np.int64)
        else:
            raise ValueError(f"unknown suffix array algorithm: {algorithm!r}")
        self._algorithm = algorithm
        self._accelerated = bool(accelerated)
        self._jump_mode = self._normalize_jump_mode(jump_start)
        self._jump_start = self._jump_mode != "off"
        self._reset_acceleration_state()

    @classmethod
    def _normalize_jump_mode(cls, jump_start: Union[bool, str, None]) -> str:
        """Map the ``jump_start`` argument to one of ``_JUMP_MODES``."""
        if jump_start is True:
            return "auto"
        if jump_start is False or jump_start is None:
            return "off"
        mode = str(jump_start).lower()
        if mode not in cls._JUMP_MODES:
            valid = ", ".join(cls._JUMP_MODES)
            raise ValueError(f"unknown jump_start mode {jump_start!r}; valid: {valid}")
        return mode

    def _reset_acceleration_state(self) -> None:
        """Initialise the lazy acceleration state (built on first search)."""
        self._padded: Optional[np.ndarray] = None
        self._position_keys: Optional[np.ndarray] = None
        self._prefix_keys: Optional[np.ndarray] = None
        self._level_keys: Dict[int, np.ndarray] = {}
        self._jump_index = None
        self._jump4_index = None
        self._jump_index_kind: Optional[str] = None
        self._byte_intervals: Optional[list] = None
        self._sa_list: Optional[list] = None
        self._level_key_lists: Optional[list] = None
        # Scalar-array views backing the vectorized single-bisect match
        # engine (built lazily by _ensure_match_arrays).
        self._pk_scalar: Optional[array] = None
        self._sa_scalar: Optional[array] = None
        self._vectorize: Optional[bool] = None

    @classmethod
    def from_precomputed(
        cls,
        text: bytes,
        suffix_array: np.ndarray,
        *,
        algorithm: str = "precomputed",
        accelerated: bool = True,
        jump_start: Union[bool, str] = True,
        position_keys: Optional[np.ndarray] = None,
        level0_keys: Optional[np.ndarray] = None,
    ) -> "SuffixArray":
        """Wrap an already-built suffix array without running construction.

        This is the attach path for shared-memory workers: the parent builds
        the suffix array (and optionally the per-position key array and the
        level-0 keys) once, publishes the raw arrays, and every worker wraps
        them here instead of re-running the O(n log n) construction.  The
        arrays are *borrowed*, not copied — they may be read-only views over
        a shared-memory buffer and must stay alive as long as this object.

        ``suffix_array`` is trusted to be the suffix array of ``text``;
        ``position_keys``/``level0_keys`` are trusted to be the arrays
        :meth:`shared_state` exports (lengths are validated, contents are
        not).  Remaining acceleration state (byte table, jump index, padded
        text) is derived lazily as usual — those passes are vectorized and
        cheap next to construction.
        """
        if not isinstance(text, (bytes, bytearray)):
            raise TypeError("SuffixArray requires a bytes-like text")
        self = cls.__new__(cls)
        self._text = bytes(text)
        self._n = len(self._text)
        sa = np.asarray(suffix_array, dtype=np.int64)
        if len(sa) != self._n:
            raise ValueError(
                f"suffix array has {len(sa)} entries for a text of {self._n} bytes"
            )
        self._sa = sa
        self._algorithm = algorithm
        self._accelerated = bool(accelerated)
        self._jump_mode = cls._normalize_jump_mode(jump_start)
        self._jump_start = self._jump_mode != "off"
        self._reset_acceleration_state()
        if position_keys is not None:
            position_keys = np.asarray(position_keys, dtype=np.uint64)
            expected = self._n + self._MAX_LEVELS * _KEY_WIDTH
            if len(position_keys) != expected:
                raise ValueError(
                    f"position_keys has {len(position_keys)} entries, expected {expected}"
                )
            self._position_keys = position_keys
        if level0_keys is not None:
            level0 = np.asarray(level0_keys, dtype=np.uint64)
            if len(level0) != self._n:
                raise ValueError(
                    f"level0_keys has {len(level0)} entries for {self._n} suffixes"
                )
            self._level_keys[0] = level0
        return self

    def shared_state(self) -> Dict[str, np.ndarray]:
        """The numpy arrays a worker needs to attach without rebuilding.

        Builds (when acceleration is enabled) *only* the exportable arrays —
        the per-position key array and the level-0 keys — and returns them
        with the suffix array, exactly the arrays :meth:`from_precomputed`
        accepts.  A parent that publishes for ``spawn`` workers but never
        factorizes itself therefore skips the Python list/dict machinery of
        the full small-text acceleration build (~100+ B per text byte); the
        full build, if it happens later, reuses these arrays.  The parallel
        pipeline copies the result into ``multiprocessing.shared_memory``
        segments.
        """
        if self._accelerated:
            self._ensure_shared_arrays()
        state: Dict[str, np.ndarray] = {"sa": self._sa}
        if self._position_keys is not None:
            state["position_keys"] = self._position_keys
        level0 = self._level_keys.get(0)
        if level0 is not None:
            state["level0_keys"] = level0
        return state

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def text(self) -> bytes:
        """The indexed text."""
        return self._text

    @property
    def algorithm(self) -> str:
        """Name of the construction algorithm that built this array."""
        return self._algorithm

    @property
    def accelerated(self) -> bool:
        """Whether the 8-byte-key acceleration is enabled."""
        return self._accelerated

    @property
    def jump_start(self) -> bool:
        """Whether the k-gram jump-start index is enabled."""
        return self._jump_start

    @property
    def jump_mode(self) -> str:
        """Configured jump-index mode: ``auto``, ``dict``, ``compact`` or ``off``."""
        return self._jump_mode

    @property
    def jump_index_kind(self) -> Optional[str]:
        """Representation actually built: ``"dict"``, ``"compact"`` or ``None``.

        ``None`` before the first accelerated search (the index is lazy) and
        when the index is disabled.  Benchmarks assert on this to prove the
        jump-start path is active — no silent fallback — for large
        dictionaries.
        """
        return self._jump_index_kind

    @property
    def array(self) -> np.ndarray:
        """The underlying suffix array as an int64 numpy array."""
        return self._sa

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index: int) -> int:
        return int(self._sa[index])

    def suffix(self, rank: int, limit: Optional[int] = None) -> bytes:
        """Return the suffix with the given rank, optionally truncated."""
        start = int(self._sa[rank])
        if limit is None:
            return self._text[start:]
        return self._text[start : start + limit]

    # ------------------------------------------------------------------
    # Interval refinement (the paper's ``Refine``)
    # ------------------------------------------------------------------
    def full_interval(self) -> SuffixInterval:
        """The interval covering every suffix (the initial ``[1, len(d)]``)."""
        return SuffixInterval(0, self._n - 1) if self._n else _EMPTY_INTERVAL

    def refine(self, interval: SuffixInterval, offset: int, byte: int) -> SuffixInterval:
        """Narrow ``interval`` to suffixes whose ``offset``-th byte equals ``byte``.

        This is the ``Refine(lb, rb, j - i, x[j])`` operation from Figure 1
        of the paper: all suffixes in ``interval`` are assumed to share their
        first ``offset`` bytes with the pattern; the returned interval
        contains exactly those whose next byte equals ``byte``.  An empty
        interval is returned when no suffix matches.
        """
        if interval.is_empty:
            return _EMPTY_INTERVAL
        bounds = self._refine_bounds(interval.lb, interval.rb, offset, byte)
        if bounds is None:
            return _EMPTY_INTERVAL
        return SuffixInterval(bounds[0], bounds[1])

    def _refine_bounds(
        self, lb: int, rb: int, offset: int, byte: int
    ) -> Optional[Tuple[int, int]]:
        """:meth:`refine` on plain bounds; ``None`` marks an empty result."""
        new_lb = self._lower_bound(lb, rb, offset, byte)
        if new_lb > rb:
            return None
        pos = int(self._sa[new_lb]) + offset
        if pos >= self._n or self._text[pos] != byte:
            return None
        return new_lb, self._upper_bound(new_lb, rb, offset, byte)

    def _suffix_positions(self):
        """Suffix positions as a plain list when built, else the numpy array.

        The accelerated path materialises the suffix array as a Python list
        (:attr:`_sa_list`) because scalar indexing of a list is several times
        faster than scalar indexing of a numpy array, and the binary-search
        and candidate-scan loops are all scalar.
        """
        return self._sa_list if self._sa_list is not None else self._sa

    def _byte_at(self, rank: int, offset: int) -> int:
        """Byte at ``offset`` within the suffix of the given rank, or -1 past the end."""
        pos = int(self._sa[rank]) + offset
        if pos >= self._n:
            return -1
        return self._text[pos]

    def _lower_bound(self, lo: int, hi: int, offset: int, byte: int) -> int:
        """Smallest rank in ``[lo, hi]`` whose byte at ``offset`` is >= ``byte``."""
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._byte_at(mid, offset) < byte:
                lo = mid + 1
            else:
                hi = mid - 1
        return lo

    def _upper_bound(self, lo: int, hi: int, offset: int, byte: int) -> int:
        """Largest rank in ``[lo, hi]`` whose byte at ``offset`` is <= ``byte``."""
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._byte_at(mid, offset) <= byte:
                lo = mid + 1
            else:
                hi = mid - 1
        return hi

    # ------------------------------------------------------------------
    # Acceleration machinery (8-byte suffix keys)
    # ------------------------------------------------------------------
    #: Number of precomputed key levels.  Level ``k`` holds, for every suffix
    #: (in suffix-array order), the 64-bit key of bytes ``8k .. 8k + 7`` of
    #: that suffix; within any interval of suffixes sharing their first
    #: ``8k`` bytes these keys are sorted, so the next 8 characters can be
    #: matched with a single ``searchsorted`` over a slice view.
    _MAX_LEVELS = 4

    #: Intervals at most this large may be advanced by gathering ad-hoc keys
    #: at a non-precomputed offset; larger intervals fall back to per-byte
    #: refinement (which shrinks them quickly at logarithmic cost).
    _GATHER_MAX = 4096

    #: Texts at most this long get the Python-list key levels and suffix-array
    #: list (fastest scalar search, ~100-150 bytes of index per text byte),
    #: and — in ``auto`` jump mode — the hash-dict jump indexes.  Longer
    #: texts keep the numpy-only machinery, whose memory overhead stays a
    #: small constant per byte, with the compact numpy jump index replacing
    #: the dict.  (Before PR 2 this constant also hard-gated the jump-start
    #: index entirely, so multi-MB dictionaries lost it.)
    _SMALL_TEXT_MAX = 1 << 20

    def _ensure_padded(self) -> np.ndarray:
        """The text zero-padded past its end for out-of-range key gathers."""
        if self._padded is None:
            text_array = np.frombuffer(self._text, dtype=np.uint8)
            self._padded = np.concatenate(
                [
                    text_array,
                    np.zeros((self._MAX_LEVELS + 1) * _KEY_WIDTH, dtype=np.uint8),
                ]
            )
        return self._padded

    def _ensure_shared_arrays(self) -> None:
        """Build just the per-position keys and level-0 keys.

        This is the exportable subset :meth:`shared_state` publishes — one
        vectorized shift-or pass plus one gather, no Python lists, dicts or
        byte tables.  Arrays injected by :meth:`from_precomputed` are kept
        as-is; :meth:`_ensure_keys` layers the rest of the acceleration
        state on top of whatever exists here.
        """
        if self._position_keys is None:
            # Key of every position 0 .. n + (_MAX_LEVELS - 1) * 8 in one
            # pass of eight shift-or operations over the padded text.
            padded = self._ensure_padded()
            span = self._n + self._MAX_LEVELS * _KEY_WIDTH
            position_keys = np.zeros(span, dtype=np.uint64)
            for j in range(_KEY_WIDTH):
                position_keys = (position_keys << np.uint64(8)) | padded[
                    j : j + span
                ].astype(np.uint64)
            self._position_keys = position_keys
        if 0 not in self._level_keys:
            self._level_keys[0] = self._position_keys[self._sa]

    def _ensure_keys(self) -> np.ndarray:
        """Precompute every key level, the jump-start index and the byte table.

        One vectorized pass computes the big-endian 8-byte key of *every*
        text position (zero-padded past the end); all ``_MAX_LEVELS`` key
        levels are then plain gathers out of that array, and the jump-start
        index falls out of the run boundaries of the (sorted) level-0 keys.
        Everything is built exactly once, on the first accelerated
        ``longest_match``.  Arrays injected by :meth:`from_precomputed`
        (shared-memory workers) are reused instead of recomputed.
        """
        if self._prefix_keys is not None:
            return self._prefix_keys
        n = self._n
        self._ensure_shared_arrays()
        position_keys = self._position_keys
        small = n <= self._SMALL_TEXT_MAX
        level0 = self._level_keys[0]
        self._level_keys = {0: level0}
        if small:
            # All levels eagerly: level k is a gather at offset 8k, plus a
            # Python-list view of the suffix array for the scalar hot loops.
            for level in range(1, self._MAX_LEVELS):
                self._level_keys[level] = position_keys[self._sa + level * _KEY_WIDTH]
            self._sa_list = self._sa.tolist()
        # Large text: keep only the numpy machinery, whose overhead is a
        # small constant per byte (level 0 above, further levels built
        # lazily by _get_level_keys on demand).
        self._prefix_keys = level0
        # First-byte interval table: refine(full, 0, b) for every byte value.
        if n:
            first_bytes = self._ensure_padded()[self._sa]
            values = np.arange(256)
            lows = np.searchsorted(first_bytes, values, side="left")
            highs = np.searchsorted(first_bytes, values, side="right")
            self._byte_intervals = [
                (int(low), int(high) - 1) if high > low else None
                for low, high in zip(lows, highs)
            ]
        else:
            self._byte_intervals = [None] * 256
        # Python-list views of the key levels: the bounded C-level ``bisect``
        # searches of the factorization loop index them without numpy slice
        # or scalar-conversion overhead.
        if n and small:
            self._level_key_lists = [
                self._level_keys[level].tolist() for level in range(self._MAX_LEVELS)
            ]
        # Jump-start indexes: the first 8-byte key of every suffix -> its
        # suffix-array interval, plus a 4-byte variant that jump-starts the
        # short factors the 8-byte index cannot serve.  ``auto`` picks the
        # representation by size: hash dicts probe fastest but cost ~100 B
        # per distinct key, so they serve small texts; the compact numpy
        # index (~10 B per distinct key) serves everything else — large
        # dictionaries get jump-start acceleration instead of a silent
        # fallback to the full-array binary search.
        if self._jump_mode != "off" and n:
            use_dict = self._jump_mode == "dict" or (
                self._jump_mode == "auto" and small
            )
            if use_dict:
                boundaries = np.flatnonzero(level0[1:] != level0[:-1]) + 1
                starts = np.concatenate(([0], boundaries))
                ends = np.concatenate((boundaries, [n]))
                self._jump_index = {
                    key: (lb, rb)
                    for key, lb, rb in zip(
                        level0[starts].tolist(), starts.tolist(), (ends - 1).tolist()
                    )
                }
                quads = level0 >> np.uint64(32)
                quad_boundaries = np.flatnonzero(quads[1:] != quads[:-1]) + 1
                quad_starts = np.concatenate(([0], quad_boundaries))
                quad_ends = np.concatenate((quad_boundaries, [n]))
                self._jump4_index = {
                    key: (lb, rb)
                    for key, lb, rb in zip(
                        quads[quad_starts].tolist(),
                        quad_starts.tolist(),
                        (quad_ends - 1).tolist(),
                    )
                }
                self._jump_index_kind = "dict"
            else:
                self._jump_index = CompactJumpIndex(level0)
                self._jump4_index = CompactJumpIndex(level0, shift=32)
                self._jump_index_kind = "compact"
        return self._prefix_keys

    def prepare(self) -> None:
        """Build all acceleration state now (e.g. before forking workers).

        The parallel encode pipeline calls this in the parent process so the
        key levels, the jump-start index and the suffix-array list are built
        once and shared copy-on-write with every forked worker.
        """
        if self._accelerated:
            self._ensure_keys()

    def acceleration_stats(self) -> Dict[str, object]:
        """Size accounting for the acceleration state (builds it first).

        Returns the jump-index kind and entry counts plus byte totals: exact
        ``nbytes`` for the numpy structures, an estimate for the dict-based
        index (measured ~100-150 B per distinct key, reported at 120).  The
        large-dictionary benchmark records these so the memory model in
        PERFORMANCE.md stays tied to measured numbers.
        """
        if self._accelerated:
            self._ensure_keys()
        jump_entries = 0
        jump_nbytes = 0
        for index in (self._jump_index, self._jump4_index):
            if index is None:
                continue
            jump_entries += len(index)
            if isinstance(index, CompactJumpIndex):
                jump_nbytes += index.nbytes
            else:
                jump_nbytes += len(index) * 120  # measured dict overhead/key
        numpy_nbytes = sum(
            int(array.nbytes)
            for array in (self._position_keys, self._padded)
            if array is not None
        ) + sum(int(keys.nbytes) for keys in self._level_keys.values())
        list_nbytes = 0
        if self._sa_list is not None:
            list_nbytes += len(self._sa_list) * 36  # list slot + small-int object
        if self._level_key_lists is not None:
            for keys in self._level_key_lists:
                list_nbytes += len(keys) * 40  # list slot + boxed uint64
        scalar_nbytes = 0
        for scalar in (self._pk_scalar, self._sa_scalar):
            if scalar is not None:
                scalar_nbytes += len(scalar) * scalar.itemsize
        return {
            "jump_index_kind": self._jump_index_kind,
            "jump_entries": jump_entries,
            "jump_nbytes": jump_nbytes,
            "numpy_nbytes": numpy_nbytes,
            "list_nbytes": list_nbytes,
            "scalar_nbytes": scalar_nbytes,
            "vectorize": self._vectorize_enabled() if self._accelerated else False,
            "text_bytes": self._n,
        }

    def probe_cache_info(self) -> Dict[str, int]:
        """Probe-layer counters of the compact jump index.

        All-zero when the dict-based index (small texts) or no jump index
        is active — those paths have no probe cache to account for.
        """
        if self._accelerated:
            self._ensure_keys()
        if isinstance(self._jump_index, CompactJumpIndex):
            return self._jump_index.probe_cache_info()
        return {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "capacity": 0,
            "batch_hits": 0,
            "batch_misses": 0,
        }

    def _get_level_keys(self, level: int) -> np.ndarray:
        """Keys of bytes ``8 * level .. 8 * level + 7`` of every suffix."""
        self._ensure_keys()
        keys = self._level_keys.get(level)
        if keys is None:
            keys = self._keys_at(self._sa, level * _KEY_WIDTH)
            self._level_keys[level] = keys
        return keys

    def _keys_at(self, positions: np.ndarray, offset: int) -> np.ndarray:
        """Big-endian uint64 keys of the 8 bytes at ``positions + offset``.

        Suffixes shorter than 8 bytes are zero-padded; because the padding
        byte (0) is smaller than any real byte that can follow, the keys of
        the suffixes in a shared-prefix interval remain sorted.

        Every position handed in by the accelerated search satisfies
        ``position + offset <= n`` (the suffixes share their first ``offset``
        bytes with the query), so the precomputed per-position keys cover the
        gather directly.
        """
        if self._position_keys is not None:
            base = positions + offset
            if base.size == 0 or int(base.max()) < len(self._position_keys):
                return self._position_keys[base]
        padded = self._padded
        base = positions + offset
        keys = np.zeros(len(positions), dtype=np.uint64)
        for j in range(_KEY_WIDTH):
            keys = (keys << np.uint64(8)) | padded[base + j].astype(np.uint64)
        return keys

    def _extend_match(self, text_pos: int, query: bytes, query_pos: int, limit: int) -> int:
        """Length of the common prefix of ``text[text_pos:]`` and ``query[query_pos:]``.

        Capped at ``limit``.  When the per-position keys are built, the
        comparison runs 8 bytes per step: the XOR of the two 64-bit keys
        locates the first differing byte directly (``limit`` already caps
        the result at the end of the text, so the zero padding folded into
        keys near the end can never overstate the match).  Otherwise falls
        back to geometrically growing slice comparisons with bisection.
        """
        text = self._text
        limit = min(limit, self._n - text_pos)
        matched = 0
        position_keys = self._position_keys
        if position_keys is not None:
            from_bytes = int.from_bytes
            while limit - matched >= _KEY_WIDTH:
                query_chunk = query[query_pos + matched : query_pos + matched + _KEY_WIDTH]
                if len(query_chunk) < _KEY_WIDTH:
                    break
                xor = from_bytes(query_chunk, "big") ^ int(
                    position_keys[text_pos + matched]
                )
                if xor == 0:
                    matched += _KEY_WIDTH
                    continue
                common = (64 - xor.bit_length()) >> 3
                remaining = limit - matched
                return matched + (common if common < remaining else remaining)
            while (
                matched < limit
                and text[text_pos + matched] == query[query_pos + matched]
            ):
                matched += 1
            return matched
        chunk = 16
        while matched < limit:
            step = min(chunk, limit - matched)
            if (
                text[text_pos + matched : text_pos + matched + step]
                == query[query_pos + matched : query_pos + matched + step]
            ):
                matched += step
                chunk *= 2
                continue
            # The mismatch lies inside this chunk: bisect it.
            while step > 1:
                half = step >> 1
                if (
                    text[text_pos + matched : text_pos + matched + half]
                    == query[query_pos + matched : query_pos + matched + half]
                ):
                    matched += half
                    step -= half
                else:
                    step = half
            break
        return matched

    def _scan_interval(
        self,
        lb: int,
        rb: int,
        query: bytes,
        start: int,
        matched: int,
        max_len: int,
    ) -> Tuple[int, int]:
        """Pick the longest match among the candidates of a small interval.

        All suffixes in ``[lb, rb]`` share their first ``matched`` bytes with
        ``query[start:]``; the scan extends each candidate and returns the
        best ``(position, length)``.
        """
        sa = self._suffix_positions()
        best_position = int(sa[lb])
        best_length = matched
        if matched >= max_len:
            return best_position, best_length
        text = self._text
        n = self._n
        extend = self._extend_match
        next_byte = query[start + matched]
        query_offset = start + matched
        budget = max_len - matched
        for rank in range(lb, rb + 1):
            position = int(sa[rank])
            # Candidates that already diverge on the next byte can never beat
            # ``best_length`` (they extend by zero); skipping them avoids the
            # comparisons of ``_extend_match`` for most of the interval.
            probe = position + matched
            if probe >= n or text[probe] != next_byte:
                continue
            length = matched + extend(probe, query, query_offset, budget)
            if length > best_length:
                best_length = length
                best_position = position
                if best_length == max_len:
                    break
        return best_position, best_length

    # ------------------------------------------------------------------
    # Longest-match search (the paper's ``Factor`` inner loop)
    # ------------------------------------------------------------------
    def longest_match(
        self, query: bytes, start: int = 0, limit: Optional[int] = None
    ) -> Tuple[int, int]:
        """Longest prefix of ``query[start:]`` that occurs in the indexed text.

        Parameters
        ----------
        query:
            The document being factorized.
        start:
            Position in ``query`` where matching begins (the factorizer's
            current cursor ``i``).
        limit:
            Optional hard cap on the match length (used to stop factors at
            document boundaries, as the paper's ``Factor`` does).

        Returns
        -------
        tuple[int, int]
            ``(position, length)`` where ``position`` is a starting offset in
            the indexed text and ``length`` the number of matching bytes.
            ``length`` is 0 when not even the first byte occurs in the text;
            ``position`` is then meaningless (callers emit a literal factor).
        """
        n_query = len(query)
        max_len = n_query - start
        if limit is not None:
            max_len = min(max_len, limit)
        if max_len <= 0 or self._n == 0:
            return (0, 0)
        if self._accelerated:
            if max_len >= _KEY_WIDTH and self._vectorize_enabled():
                # Share the single-bisect engine with match_stream /
                # factorize_stream: build the query keys for just the
                # window this call may touch, then resolve the factor in
                # one lcp-aware binary search.  Streaming callers should
                # prefer match_stream, which amortizes the key build over
                # the whole document.
                self._ensure_match_arrays()
                qk = self._query_keys(query, start, start + max_len)
                return self._match_factor(query, start, max_len, qk, start)
            return self._longest_match_accelerated(query, start, max_len)
        return self._longest_match_refine(query, start, max_len, 0, self._n - 1, 0)

    def _longest_match_refine(
        self,
        query: bytes,
        start: int,
        max_len: int,
        lb: int,
        rb: int,
        matched: int,
    ) -> Tuple[int, int]:
        """Per-character interval refinement — the paper's Factor loop.

        The bounds are carried as plain integers and the binary searches run
        over the list view of the suffix array (when built), so the loop
        allocates nothing per character.
        """
        sa = self._suffix_positions()
        text = self._text
        n = self._n
        scan_threshold = self._SCAN_THRESHOLD
        byte_intervals = self._byte_intervals
        while matched < max_len:
            if rb - lb + 1 <= scan_threshold:
                # Few candidates left: scanning them directly generalises the
                # ``lb = rb`` shortcut in the paper's Factor function.
                return self._scan_interval(lb, rb, query, start, matched, max_len)
            byte = query[start + matched]
            if matched == 0 and lb == 0 and rb == n - 1 and byte_intervals is not None:
                jump4 = self._jump4_index
                if jump4 is not None and max_len >= 4:
                    window4 = query[start : start + 4]
                    # Short-factor jump start: hash the first 4 bytes to the
                    # interval four refinements would reach.  The index is
                    # consulted only for a *full-width, zero-free* window: a
                    # sub-width window's big-endian value is indistinguishable
                    # from the zero-padded key of a suffix near the end of the
                    # text, and a zero byte in the window is ambiguous against
                    # that same padding.  (``max_len >= 4`` already implies
                    # four query bytes exist, but the length guard keeps the
                    # invariant local.)  The candidate verification below
                    # additionally rejects any padding artefact outright.
                    if len(window4) == 4 and b"\x00" not in window4:
                        hit4 = jump4.get(int.from_bytes(window4, "big"))
                        if hit4 is not None:
                            candidate = sa[hit4[0]]
                            if text[candidate : candidate + 4] == window4:
                                lb, rb = hit4
                                matched = 4
                                continue
                # Full interval at offset 0: the precomputed first-byte table
                # is exactly refine(full, 0, byte).
                hit = byte_intervals[byte]
                if hit is None:
                    break
                lb, rb = hit
                matched = 1
                continue
            # Inline lower bound over [lb, rb] at offset ``matched``.
            low, high = lb, rb
            while low <= high:
                mid = (low + high) >> 1
                pos = sa[mid] + matched
                if (text[pos] if pos < n else -1) < byte:
                    low = mid + 1
                else:
                    high = mid - 1
            if low > rb:
                break
            pos = sa[low] + matched
            if pos >= n or text[pos] != byte:
                break
            new_lb = low
            # Inline upper bound over [new_lb, rb].
            low, high = new_lb, rb
            while low <= high:
                mid = (low + high) >> 1
                pos = sa[mid] + matched
                if (text[pos] if pos < n else -1) <= byte:
                    low = mid + 1
                else:
                    high = mid - 1
            lb, rb = new_lb, high
            matched += 1
        if matched == 0:
            return (0, 0)
        return (int(sa[lb]), matched)

    def _longest_match_accelerated(
        self, query: bytes, start: int, max_len: int
    ) -> Tuple[int, int]:
        """8-byte-stride variant producing the same greedy longest match."""
        self._ensure_keys()
        sa = self._sa
        sa_list = self._suffix_positions()
        text = self._text
        jump_index = self._jump_index

        matched = 0
        lb, rb = 0, self._n - 1
        while max_len - matched >= _KEY_WIDTH:
            window = query[start + matched : start + matched + _KEY_WIDTH]
            if b"\x00" in window:
                # Zero bytes in the query could collide with the zero padding
                # used for suffixes shorter than the key span; the
                # per-character path has no such ambiguity, so use it for
                # this (rare) case.
                return self._longest_match_refine(query, start, max_len, lb, rb, matched)
            if matched == 0 and jump_index is not None:
                # Jump start: hash the first 8 bytes straight to the interval
                # that a searchsorted over the full key array would reach.
                hit = jump_index.get(int.from_bytes(window, "big"))
                if hit is None:
                    return self._longest_match_refine(query, start, max_len, lb, rb, 0)
                jump_lb, jump_rb = hit
                candidate = sa_list[jump_lb]
                # Same zero-padding guard as the searchsorted path below.
                if text[candidate : candidate + _KEY_WIDTH] != window:
                    return self._longest_match_refine(query, start, max_len, lb, rb, 0)
                lb, rb = jump_lb, jump_rb
                matched = _KEY_WIDTH
            else:
                level, within = divmod(matched, _KEY_WIDTH)
                interval_size = rb - lb + 1
                if within == 0 and level < self._MAX_LEVELS:
                    # Precomputed level: binary search a slice view, no copying.
                    keys = self._get_level_keys(level)[lb : rb + 1]
                elif interval_size <= self._GATHER_MAX:
                    # Ad-hoc offset: gather the 8-byte keys of the candidates.
                    keys = self._keys_at(sa[lb : rb + 1], matched)
                else:
                    # Large interval at an unaligned offset: one character of
                    # ordinary refinement shrinks it at logarithmic cost.
                    bounds = self._refine_bounds(lb, rb, matched, query[start + matched])
                    if bounds is None:
                        return (int(sa_list[lb]), matched) if matched else (0, 0)
                    lb, rb = bounds
                    matched += 1
                    continue

                query_key = np.uint64(int.from_bytes(window, "big"))
                left = int(keys.searchsorted(query_key, side="left"))
                right = int(keys.searchsorted(query_key, side="right")) - 1
                if left > right:
                    # The next 8 bytes do not match in full; finish with
                    # per-character refinement inside the current interval.
                    return self._longest_match_refine(
                        query, start, max_len, lb, rb, matched
                    )
                candidate = int(sa_list[lb + left])
                # Guard against zero-padding artefacts near the end of the
                # text: verify the 8 bytes really are present.
                if text[candidate + matched : candidate + matched + _KEY_WIDTH] != window:
                    return self._longest_match_refine(
                        query, start, max_len, lb, rb, matched
                    )
                lb, rb = lb + left, lb + right
                matched += _KEY_WIDTH
            if rb - lb + 1 <= self._SCAN_THRESHOLD:
                return self._scan_interval(lb, rb, query, start, matched, max_len)

        # Fewer than 8 bytes remain (or remained from the start): finish with
        # per-character refinement, which also handles matched == 0 correctly.
        return self._longest_match_refine(query, start, max_len, lb, rb, matched)

    # ------------------------------------------------------------------
    # Whole-document factorization (the encode hot loop)
    # ------------------------------------------------------------------
    def factorize_stream(self, query: bytes) -> Tuple[list, list]:
        """Greedy RLZ parse of ``query`` as (positions, lengths) streams.

        This is the encode fast path: the equivalent of calling
        :meth:`longest_match` at every cursor position, but with the whole
        per-factor state machine inlined so attribute lookups and call
        overhead are paid once per document instead of once per factor, and
        with the final sub-8-byte tail of each factor resolved by a binary
        descent over key *ranges* (all suffixes sharing ``t`` more bytes
        form a contiguous key range) instead of per-character refinement.

        The parse is byte-identical to the one :meth:`longest_match`
        produces — literal factors are emitted as ``(byte_value, 0)`` pairs,
        copy factors as ``(position, length)``.
        """
        if not isinstance(query, (bytes, bytearray)):
            raise TypeError("factorize_stream requires a bytes-like query")
        query = bytes(query)
        positions: list = []
        lengths: list = []
        query_length = len(query)
        if query_length == 0:
            return positions, lengths
        if not self._accelerated or self._n == 0:
            cursor = 0
            while cursor < query_length:
                position, length = self.longest_match(query, cursor)
                if length == 0:
                    positions.append(query[cursor])
                    lengths.append(0)
                    cursor += 1
                else:
                    positions.append(position)
                    lengths.append(length)
                    cursor += length
            return positions, lengths

        self._ensure_keys()
        if self._vectorize_enabled():
            # Vectorized path: per-document query keys built in one numpy
            # pass, one lcp-aware bisect per factor (match_stream).  The
            # scalar loop below remains the reference implementation and
            # the default for small texts, where the C-level bisect over
            # key lists is already faster than the engine's Python ints.
            append_position = positions.append
            append_length = lengths.append
            for position, length in self.match_stream(query):
                append_position(position)
                append_length(length)
            return positions, lengths
        from bisect import bisect_left, bisect_right

        text = self._text
        n = self._n
        sa = self._sa
        # Beyond the index-size gate sa_list is None; the numpy array works
        # in its place (resolved positions are int()-normalised below).
        sa_list = self._suffix_positions()
        jump_index = self._jump_index
        get_level_keys = self._get_level_keys
        key_lists = self._level_key_lists
        position_keys = self._position_keys
        scan_threshold = self._SCAN_THRESHOLD
        gather_max = self._GATHER_MAX
        max_levels = self._MAX_LEVELS
        uint64 = np.uint64
        from_bytes = int.from_bytes
        append_position = positions.append
        append_length = lengths.append

        cursor = 0
        while cursor < query_length:
            max_len = query_length - cursor
            lb, rb = 0, n - 1
            matched = 0
            factor_position = -1
            factor_length = -1

            # ---- match one factor ---------------------------------------
            # Each iteration either advances ``matched`` by 8 (a full key
            # match), advances by 1 (large unaligned interval), or resolves
            # the factor outright via the insertion-point / XOR trick: the
            # longest key prefix shared with a sorted key set is achieved at
            # a neighbour of the query key's insertion point, and the shared
            # byte count falls out of ``(64 - xor.bit_length()) >> 3``.
            while True:
                interval_size = rb - lb + 1
                if interval_size <= scan_threshold:
                    factor_position, factor_length = self._scan_interval(
                        lb, rb, query, cursor, matched, max_len
                    )
                    break
                remaining = max_len - matched
                if remaining == 0:
                    factor_position, factor_length = int(sa_list[lb]), matched
                    break
                window_start = cursor + matched
                full_step = remaining >= _KEY_WIDTH
                if full_step:
                    window = query[window_start : window_start + _KEY_WIDTH]
                    span = _KEY_WIDTH
                    query_key = from_bytes(window, "big")
                    # SWAR zero-byte test: a zero byte anywhere in the window
                    # is ambiguous against the zero padding, so such windows
                    # take the per-character path instead.
                    if (
                        (query_key - 0x0101010101010101)
                        & ~query_key
                        & 0x8080808080808080
                    ):
                        factor_position, factor_length = self._longest_match_refine(
                            query, cursor, max_len, lb, rb, matched
                        )
                        break
                else:
                    window = query[window_start : window_start + remaining]
                    span = remaining
                    if b"\x00" in window:
                        factor_position, factor_length = self._longest_match_refine(
                            query, cursor, max_len, lb, rb, matched
                        )
                        break
                    query_key = from_bytes(window, "big") << (8 * (_KEY_WIDTH - span))

                if matched == 0 and full_step and jump_index is not None:
                    hit = jump_index.get(query_key)
                    if hit is not None:
                        candidate = sa_list[hit[0]]
                        if text[candidate : candidate + _KEY_WIDTH] == window:
                            lb, rb = hit
                            matched = _KEY_WIDTH
                            continue
                    # The full 8 bytes occur nowhere: fall through to the
                    # insertion search below to find the shorter best match.

                level = matched >> 3
                aligned_level = not matched & 7 and level < max_levels
                if aligned_level and key_lists is not None:
                    # Bounded C-level bisect over the Python-int key list:
                    # no numpy slices, scalar conversions or dtype coercions
                    # anywhere on this path.  Indices are absolute ranks.
                    keys_list = key_lists[level]
                    bound = rb + 1
                    insert = bisect_left(keys_list, query_key, lb, bound)
                    shared = 0
                    if insert < bound:
                        xor = query_key ^ keys_list[insert]
                        shared = (
                            _KEY_WIDTH if xor == 0 else (64 - xor.bit_length()) >> 3
                        )
                    if insert > lb:
                        xor = query_key ^ keys_list[insert - 1]
                        left_shared = (
                            _KEY_WIDTH if xor == 0 else (64 - xor.bit_length()) >> 3
                        )
                        if left_shared > shared:
                            shared = left_shared
                    if full_step and shared == _KEY_WIDTH:
                        candidate = sa_list[insert]
                        if (
                            text[candidate + matched : candidate + matched + _KEY_WIDTH]
                            == window
                        ):
                            rb = bisect_right(keys_list, query_key, insert, bound) - 1
                            lb = insert
                            matched += _KEY_WIDTH
                            continue
                        factor_position, factor_length = self._longest_match_refine(
                            query, cursor, max_len, lb, rb, matched
                        )
                        break
                    tail = span - 1 if full_step else span
                    if shared > tail:
                        shared = tail
                    if shared == 0:
                        factor_position, factor_length = (
                            (sa_list[lb], matched) if matched else (0, 0)
                        )
                        break
                    shift = 8 * (_KEY_WIDTH - shared)
                    key_low = (query_key >> shift) << shift
                    upper = insert + 1 if insert <= rb else bound
                    left = bisect_left(keys_list, key_low, lb, upper)
                    candidate = sa_list[left]
                    if (
                        text[candidate + matched : candidate + matched + shared]
                        == window[:shared]
                    ):
                        factor_position = candidate
                        factor_length = matched + shared
                    else:
                        factor_position, factor_length = self._longest_match_refine(
                            query, cursor, max_len, lb, rb, matched
                        )
                    break

                if aligned_level:
                    keys = get_level_keys(level)[lb : rb + 1]
                elif interval_size <= gather_max:
                    keys = position_keys[sa[lb : rb + 1] + matched]
                else:
                    # Large interval at an unaligned offset: one character of
                    # ordinary refinement shrinks it at logarithmic cost.
                    bounds = self._refine_bounds(lb, rb, matched, window[0])
                    if bounds is None:
                        factor_position, factor_length = (
                            (int(sa_list[lb]), matched) if matched else (0, 0)
                        )
                        break
                    lb, rb = bounds
                    matched += 1
                    continue

                insert = int(keys.searchsorted(uint64(query_key), side="left"))
                shared = 0
                if insert < interval_size:
                    xor = query_key ^ int(keys[insert])
                    shared = _KEY_WIDTH if xor == 0 else (64 - xor.bit_length()) >> 3
                if insert > 0:
                    xor = query_key ^ int(keys[insert - 1])
                    left_shared = (
                        _KEY_WIDTH if xor == 0 else (64 - xor.bit_length()) >> 3
                    )
                    if left_shared > shared:
                        shared = left_shared

                if full_step and shared == _KEY_WIDTH:
                    # The whole window matches: narrow to its equality run
                    # (it starts at ``insert`` because the search was
                    # left-sided) and take the next stride.
                    candidate = int(sa_list[lb + insert])
                    if (
                        text[candidate + matched : candidate + matched + _KEY_WIDTH]
                        == window
                    ):
                        right_excl = int(
                            keys.searchsorted(uint64(query_key), side="right")
                        )
                        lb, rb = lb + insert, lb + right_excl - 1
                        matched += _KEY_WIDTH
                        continue
                    # Padding artefact (defensive): use the exact path.
                    factor_position, factor_length = self._longest_match_refine(
                        query, cursor, max_len, lb, rb, matched
                    )
                    break

                # The factor ends inside this window: ``shared`` more bytes
                # match (capped at span - 1 for a full window, since a whole-
                # window match was handled above; at span for a short tail,
                # where key padding may inflate the XOR agreement).
                tail = span - 1 if full_step else span
                if shared > tail:
                    shared = tail
                if shared == 0:
                    factor_position, factor_length = (
                        (int(sa_list[lb]), matched) if matched else (0, 0)
                    )
                    break
                # Leftmost suffix sharing those bytes: the lower edge of the
                # key range [window_shared 00.., window_shared ff..].
                shift = 8 * (_KEY_WIDTH - shared)
                key_low = (query_key >> shift) << shift
                left = int(keys.searchsorted(uint64(key_low), side="left"))
                candidate = int(sa_list[lb + left])
                if (
                    text[candidate + matched : candidate + matched + shared]
                    == window[:shared]
                ):
                    factor_position = candidate
                    factor_length = matched + shared
                else:
                    # Padding artefact (defensive): use the exact path.
                    factor_position, factor_length = self._longest_match_refine(
                        query, cursor, max_len, lb, rb, matched
                    )
                break

            # ---- emit one factor ----------------------------------------
            if factor_length == 0:
                append_position(query[cursor])
                append_length(0)
                cursor += 1
            else:
                append_position(factor_position)
                append_length(factor_length)
                cursor += factor_length
        return positions, lengths

    # ------------------------------------------------------------------
    # Vectorized single-bisect match engine
    # ------------------------------------------------------------------
    #: Query offsets probed per ``CompactJumpIndex.get_batch`` call when
    #: the adaptive streamer is in the short-stride regime.
    _BATCH_PROBE_BLOCK = 2048

    #: EWMA factor stride at or below which batch probing wins.  A batched
    #: probe costs ~150 ns against ~1.5 us for a scalar memoryview probe,
    #: but batching probes *every* offset while a factor of length L skips
    #: L - 1 of them — so it only pays off in the short-factor regime.
    _BATCH_STRIDE_CUTOFF = 8.0

    @property
    def vectorize(self) -> Optional[bool]:
        """Vectorized-engine toggle: ``True``, ``False`` or ``None`` (auto)."""
        return self._vectorize

    @vectorize.setter
    def vectorize(self, value: Optional[bool]) -> None:
        self._vectorize = None if value is None else bool(value)

    def _vectorize_enabled(self) -> bool:
        """Resolve the engine toggle: attribute, then environment, then auto.

        Auto enables the engine exactly where it wins: large texts, whose
        acceleration state keeps only the numpy machinery
        (``_level_key_lists`` is None).  Small texts keep the scalar loop,
        whose bounded C-level bisects are already faster there.
        ``REPRO_VECTORIZE=1``/``0`` overrides auto (but not an explicit
        ``vectorize`` attribute) for A/B runs.
        """
        value = self._vectorize
        if value is not None:
            return value
        env = os.environ.get("REPRO_VECTORIZE", "").strip().lower()
        if env in ("1", "true", "on", "always"):
            return True
        if env in ("0", "false", "off", "never"):
            return False
        if not self._accelerated or self._n == 0:
            return False
        self._ensure_keys()
        return self._level_key_lists is None

    def _ensure_match_arrays(self) -> None:
        """Build the scalar-array state the match engine indexes.

        ``array('Q')``/``array('q')`` copies of the per-position keys and
        the suffix array: indexing them yields plain Python ints with none
        of the numpy scalar-boxing overhead the engine's inner loops would
        otherwise pay on every key read.
        """
        if self._pk_scalar is not None:
            return
        self._ensure_keys()
        self._pk_scalar = array("Q", self._position_keys.tobytes())
        sa = self._sa
        if sa.dtype != np.int64:
            sa = sa.astype(np.int64)
        self._sa_scalar = array("q", sa.tobytes())

    @staticmethod
    def _query_keys(query: bytes, start: int = 0, stop: Optional[int] = None) -> array:
        """Big-endian 8-byte keys of every position of ``query[start:stop]``.

        One vectorized shift-or pass over the zero-padded window, returned
        as an ``array('Q')`` indexed by ``position - start``.  The zero
        padding past ``stop`` mirrors the padding of the text-side keys;
        the engine's compare limits guarantee it never influences a result.
        """
        if stop is None:
            stop = len(query)
        span = stop - start
        padded = np.zeros(span + _KEY_WIDTH, dtype=np.uint8)
        if span:
            padded[:span] = np.frombuffer(
                query, dtype=np.uint8, count=span, offset=start
            )
        keys = np.zeros(span, dtype=np.uint64)
        for j in range(_KEY_WIDTH):
            keys = (keys << np.uint64(8)) | padded[j : j + span].astype(np.uint64)
        return array("Q", keys.tobytes())

    def match_stream(self, query: bytes) -> Iterator[Tuple[int, int]]:
        """Yield the greedy parse of ``query`` one factor at a time.

        Produces exactly the pairs :meth:`factorize_stream` emits —
        ``(position, length)`` copies and ``(byte_value, 0)`` literals —
        but as a generator, so streaming consumers (``iter_factors``)
        share the vectorized engine without materializing both streams.

        The per-document query keys are built once in a vectorized pass;
        each factor is then resolved by a single lcp-aware binary search
        over its jump-start interval (:meth:`_match_factor`).  When the
        jump index is compact and recent factors are short — the
        literal-heavy regime where probe cost dominates the parse —
        upcoming offsets are probed in vectorized ``get_batch`` blocks
        instead of one scalar probe per factor; the EWMA of recent factor
        strides switches the mode.
        """
        if not isinstance(query, (bytes, bytearray)):
            raise TypeError("match_stream requires a bytes-like query")
        query = bytes(query)
        query_length = len(query)
        if query_length == 0:
            return
        if not self._accelerated or self._n == 0 or not self._vectorize_enabled():
            # Scalar reference loop: also the fast path for small texts,
            # where the dict jump index beats the batched engine.
            cursor = 0
            while cursor < query_length:
                position, length = self.longest_match(query, cursor)
                if length == 0:
                    yield (query[cursor], 0)
                    cursor += 1
                else:
                    yield (position, length)
                    cursor += length
            return
        self._ensure_match_arrays()
        qk = self._query_keys(query)
        match_factor = self._match_factor
        jump_index = self._jump_index
        batch_get = (
            jump_index.get_batch
            if isinstance(jump_index, CompactJumpIndex)
            else None
        )
        qk_np: Optional[np.ndarray] = None
        batch_lbs: Optional[array] = None
        batch_rbs: Optional[array] = None
        batch_base = batch_stop = 0
        block = self._BATCH_PROBE_BLOCK
        cutoff = self._BATCH_STRIDE_CUTOFF
        stride_ewma = 4.0 * cutoff  # start in the scalar-probe regime
        # First offset without a full 8-byte window: never worth probing.
        last_probe = query_length - _KEY_WIDTH + 1
        cursor = 0
        while cursor < query_length:
            jump_hit = None
            jump_checked = False
            if batch_get is not None and cursor < last_probe:
                if batch_lbs is not None and batch_base <= cursor < batch_stop:
                    lb = batch_lbs[cursor - batch_base]
                    jump_checked = True
                    if lb >= 0:
                        jump_hit = (lb, batch_rbs[cursor - batch_base])
                elif stride_ewma <= cutoff:
                    stop = cursor + block
                    if stop > last_probe:
                        stop = last_probe
                    if qk_np is None:
                        qk_np = np.frombuffer(qk, dtype=np.uint64)
                    lbs, rbs = batch_get(qk_np[cursor:stop])
                    batch_lbs = array("q", lbs.tobytes())
                    batch_rbs = array("q", rbs.tobytes())
                    batch_base, batch_stop = cursor, stop
                    lb = batch_lbs[0]
                    jump_checked = True
                    if lb >= 0:
                        jump_hit = (lb, batch_rbs[0])
            position, length = match_factor(
                query, cursor, query_length - cursor, qk, 0, jump_hit, jump_checked
            )
            if length == 0:
                yield (query[cursor], 0)
                cursor += 1
                stride_ewma += 0.125 * (1.0 - stride_ewma)
            else:
                yield (position, length)
                cursor += length
                stride_ewma += 0.125 * (length - stride_ewma)

    def _match_factor(
        self,
        query: bytes,
        cursor: int,
        max_len: int,
        qk: array,
        qk_off: int,
        jump_hit: Optional[Tuple[int, int]] = None,
        jump_checked: bool = False,
    ) -> Tuple[int, int]:
        """Resolve one greedy factor with a single lcp-aware binary search.

        The jump-start interval ``[lb, rb]`` already holds every suffix
        sharing the first 8 query bytes, in sorted order — so the longest
        match is achieved at a neighbour of the query's insertion point,
        and the classic llcp/rlcp bookkeeping (each comparison resumes at
        the bytes the bisection has already certified) finds it in one
        O(log interval + factor length / 8) descent instead of one level
        per 8 bytes.  The leftmost rank achieving the maximum — the scalar
        paths' tie-break — is recovered by galloping left over the run of
        ranks with the same lcp.

        ``qk`` holds the query keys (``array('Q')``, indexed by
        ``position - qk_off``).  ``jump_checked``/``jump_hit`` let
        :meth:`match_stream` hand in a batched probe result; otherwise the
        index is probed here.  Cold cases — short tails, zero bytes in the
        window, jump misses — are delegated to the exact scalar paths, so
        the parse stays byte-identical by construction.
        """
        if max_len < _KEY_WIDTH:
            return self._longest_match_accelerated(query, cursor, max_len)
        qbase = cursor - qk_off
        qk0 = qk[qbase]
        if (qk0 - 0x0101010101010101) & ~qk0 & 0x8080808080808080:
            # A zero byte in the window is ambiguous against key padding;
            # the per-character path has no such ambiguity.
            return self._longest_match_accelerated(query, cursor, max_len)
        if not jump_checked:
            jump_index = self._jump_index
            if jump_index is None:
                return self._longest_match_accelerated(query, cursor, max_len)
            jump_hit = jump_index.get(qk0)
        n = self._n
        if jump_hit is None:
            # The full 8 bytes occur nowhere: per-character refinement over
            # the full interval finds the shorter best match (the same
            # branch the scalar paths take on a jump miss).
            return self._longest_match_refine(query, cursor, max_len, 0, n - 1, 0)
        pk = self._pk_scalar
        sa_arr = self._sa_scalar
        lb = jump_hit[0]
        if pk[sa_arr[lb]] != qk0:
            # Zero-padding artefact near the end of the text.
            return self._longest_match_refine(query, cursor, max_len, 0, n - 1, 0)
        rb = jump_hit[1]
        budget = max_len
        # ---- lcp-aware bisect for the query's insertion point ----------
        lo = lb
        hi = rb + 1
        llcp = rlcp = _KEY_WIDTH
        while lo < hi:
            mid = (lo + hi) >> 1
            f = llcp if llcp < rlcp else rlcp
            p = sa_arr[mid]
            limit = n - p
            if budget < limit:
                limit = budget
            cmp = 0
            while limit - f >= _KEY_WIDTH:
                a = qk[qbase + f]
                b = pk[p + f]
                if a == b:
                    f += _KEY_WIDTH
                    continue
                f += (64 - (a ^ b).bit_length()) >> 3
                cmp = 1 if b > a else -1
                break
            else:
                t = limit - f
                if t > 0:
                    sb = (8 - t) << 3
                    xq = qk[qbase + f] >> sb
                    xp = pk[p + f] >> sb
                    if xq != xp:
                        f += t - (((xq ^ xp).bit_length() + 7) >> 3)
                        cmp = 1 if xp > xq else -1
            if cmp == 0:
                # Ran to the limit: the shorter side sorts first.
                f = limit
                cmp = -1 if limit < budget else 1
            if cmp < 0:
                lo = mid + 1
                llcp = f
            else:
                hi = mid
                rlcp = f
        ip = lo
        # ---- exact lcp of the two neighbours (resumed, inline) ---------
        left_lcp = 0
        if ip > lb:
            p = sa_arr[ip - 1]
            f = llcp
            limit = n - p
            if budget < limit:
                limit = budget
            while limit - f >= _KEY_WIDTH:
                a = qk[qbase + f]
                b = pk[p + f]
                if a == b:
                    f += _KEY_WIDTH
                    continue
                f += (64 - (a ^ b).bit_length()) >> 3
                break
            else:
                t = limit - f
                if t > 0:
                    sb = (8 - t) << 3
                    x = (qk[qbase + f] >> sb) ^ (pk[p + f] >> sb)
                    if x:
                        f += t - ((x.bit_length() + 7) >> 3)
                    else:
                        f = limit
                else:
                    f = limit
            left_lcp = f
        right_lcp = 0
        if ip <= rb:
            p = sa_arr[ip]
            f = rlcp
            limit = n - p
            if budget < limit:
                limit = budget
            while limit - f >= _KEY_WIDTH:
                a = qk[qbase + f]
                b = pk[p + f]
                if a == b:
                    f += _KEY_WIDTH
                    continue
                f += (64 - (a ^ b).bit_length()) >> 3
                break
            else:
                t = limit - f
                if t > 0:
                    sb = (8 - t) << 3
                    x = (qk[qbase + f] >> sb) ^ (pk[p + f] >> sb)
                    if x:
                        f += t - ((x.bit_length() + 7) >> 3)
                    else:
                        f = limit
                else:
                    f = limit
            right_lcp = f
        # ---- leftmost rank achieving the maximum -----------------------
        if left_lcp >= right_lcp:
            length = left_lcp
            if length == _KEY_WIDTH:
                # Every rank in the interval shares exactly these 8 bytes:
                # the leftmost is lb itself.
                return (sa_arr[lb], _KEY_WIDTH)
            # Gallop left from ip - 1: the run of ranks with lcp >= length
            # ends at ip - 1 and is typically short.
            lo2 = ip - 1
            step = 1
            while True:
                probe = (ip - 1) - step
                if probe < lb:
                    low_bound = lb - 1
                    break
                p = sa_arr[probe]
                f = _KEY_WIDTH
                limit = n - p
                if length < limit:
                    limit = length
                while limit - f >= _KEY_WIDTH:
                    a = qk[qbase + f]
                    b = pk[p + f]
                    if a == b:
                        f += _KEY_WIDTH
                        continue
                    f += (64 - (a ^ b).bit_length()) >> 3
                    break
                else:
                    t = limit - f
                    if t > 0:
                        sb = (8 - t) << 3
                        x = (qk[qbase + f] >> sb) ^ (pk[p + f] >> sb)
                        if x:
                            f += t - ((x.bit_length() + 7) >> 3)
                        else:
                            f = limit
                    else:
                        f = limit
                if f >= length and limit == length:
                    lo2 = probe
                    step <<= 1
                else:
                    low_bound = probe
                    break
            # Bisect (low_bound, lo2] for the edge of the lcp-run; lo2 is
            # the leftmost rank already verified to achieve the maximum.
            while low_bound + 1 < lo2:
                mid = (low_bound + lo2 + 1) >> 1
                p = sa_arr[mid]
                f = _KEY_WIDTH
                limit = n - p
                if length < limit:
                    limit = length
                while limit - f >= _KEY_WIDTH:
                    a = qk[qbase + f]
                    b = pk[p + f]
                    if a == b:
                        f += _KEY_WIDTH
                        continue
                    f += (64 - (a ^ b).bit_length()) >> 3
                    break
                else:
                    t = limit - f
                    if t > 0:
                        sb = (8 - t) << 3
                        x = (qk[qbase + f] >> sb) ^ (pk[p + f] >> sb)
                        if x:
                            f += t - ((x.bit_length() + 7) >> 3)
                        else:
                            f = limit
                    else:
                        f = limit
                if f >= length and limit == length:
                    lo2 = mid
                else:
                    low_bound = mid
            return (sa_arr[lo2], length)
        length = right_lcp
        if length == _KEY_WIDTH:
            return (sa_arr[lb], _KEY_WIDTH)
        return (sa_arr[ip], length)

    # ------------------------------------------------------------------
    # Pattern queries (used by tests and the dictionary statistics)
    # ------------------------------------------------------------------
    def find_all(self, pattern: bytes) -> Iterator[int]:
        """Yield every starting position of ``pattern`` in the indexed text."""
        if not pattern:
            return
        interval = self.full_interval()
        for offset, byte in enumerate(pattern):
            interval = self.refine(interval, offset, byte)
            if interval.is_empty:
                return
        for rank in range(interval.lb, interval.rb + 1):
            yield int(self._sa[rank])

    def count(self, pattern: bytes) -> int:
        """Number of occurrences of ``pattern`` in the indexed text."""
        if not pattern:
            return 0
        interval = self.full_interval()
        for offset, byte in enumerate(pattern):
            interval = self.refine(interval, offset, byte)
            if interval.is_empty:
                return 0
        return interval.size

    # ------------------------------------------------------------------
    # LCP array (used by dictionary statistics and tests)
    # ------------------------------------------------------------------
    def lcp_array(self) -> np.ndarray:
        """Longest-common-prefix array via Kasai's algorithm.

        ``lcp[i]`` is the length of the longest common prefix of the suffixes
        of ranks ``i - 1`` and ``i`` (``lcp[0]`` is 0 by convention).
        """
        n = self._n
        lcp = np.zeros(n, dtype=np.int64)
        if n == 0:
            return lcp
        rank = np.empty(n, dtype=np.int64)
        rank[self._sa] = np.arange(n, dtype=np.int64)
        text = self._text
        h = 0
        for i in range(n):
            r = rank[i]
            if r > 0:
                j = int(self._sa[r - 1])
                while i + h < n and j + h < n and text[i + h] == text[j + h]:
                    h += 1
                lcp[r] = h
                if h > 0:
                    h -= 1
            else:
                h = 0
        return lcp
