"""High-level suffix array facade used by the RLZ factorizer.

:class:`SuffixArray` wraps a byte string (typically the RLZ dictionary) and
its suffix array, and exposes the two operations the paper's algorithms in
Figure 1 rely on:

* :meth:`SuffixArray.refine` — the ``Refine`` function: given an interval
  ``[lb, rb]`` of suffixes whose first ``offset`` characters match the
  pattern so far, narrow it to the sub-interval whose next character equals
  a given byte.
* :meth:`SuffixArray.longest_match` — the inner loop of ``Factor``: the
  longest prefix of a query that occurs anywhere in the indexed text,
  returned as a (position, length) pair.

Two execution modes are provided:

* the *faithful* mode (``accelerated=False``) follows the paper's pseudo-code
  exactly: one binary-search refinement per matched character;
* the *accelerated* mode (default) produces the identical greedy parse but
  advances eight characters per step where possible, by binary searching
  over precomputed 64-bit suffix keys with ``numpy.searchsorted`` and
  falling back to per-character refinement for the final partial step.  The
  ablation benchmark verifies that both modes emit byte-identical factor
  streams and measures the speed difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from .doubling import suffix_array_doubling
from .sais import sais

__all__ = ["SuffixArray", "SuffixInterval"]

_KEY_WIDTH = 8  # bytes folded into one uint64 key per acceleration step


@dataclass(frozen=True)
class SuffixInterval:
    """An inclusive suffix-array interval ``[lb, rb]``.

    ``is_empty`` is true when the interval contains no suffixes
    (``lb > rb``), mirroring the paper's "no longer a valid interval" check.
    """

    lb: int
    rb: int

    @property
    def is_empty(self) -> bool:
        return self.lb > self.rb

    @property
    def size(self) -> int:
        return 0 if self.is_empty else self.rb - self.lb + 1


_EMPTY_INTERVAL = SuffixInterval(0, -1)


class SuffixArray:
    """Suffix array over a byte string with interval-refinement search.

    Parameters
    ----------
    text:
        The text to index (the RLZ dictionary in normal use).
    algorithm:
        ``"doubling"`` (default) uses the numpy prefix-doubling construction;
        ``"sais"`` uses the pure-Python linear-time SA-IS construction.
    accelerated:
        Enable the 8-byte-key acceleration of :meth:`longest_match`.  The
        parse produced is identical either way; disabling it gives the
        paper's literal per-character algorithm.
    """

    #: Interval sizes at or below this threshold are scanned candidate by
    #: candidate instead of refined further; with a handful of candidates the
    #: direct scan is both simpler and faster.
    _SCAN_THRESHOLD = 16

    def __init__(
        self,
        text: bytes,
        algorithm: str = "doubling",
        accelerated: bool = True,
    ) -> None:
        if not isinstance(text, (bytes, bytearray)):
            raise TypeError("SuffixArray requires a bytes-like text")
        self._text = bytes(text)
        self._n = len(self._text)
        if algorithm == "doubling":
            self._sa = suffix_array_doubling(self._text)
        elif algorithm == "sais":
            self._sa = np.asarray(sais(self._text), dtype=np.int64)
        else:
            raise ValueError(f"unknown suffix array algorithm: {algorithm!r}")
        self._algorithm = algorithm
        self._accelerated = bool(accelerated)
        # Acceleration state, built lazily on first longest_match call.
        self._padded: Optional[np.ndarray] = None
        self._prefix_keys: Optional[np.ndarray] = None
        self._level_keys: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def text(self) -> bytes:
        """The indexed text."""
        return self._text

    @property
    def algorithm(self) -> str:
        """Name of the construction algorithm that built this array."""
        return self._algorithm

    @property
    def accelerated(self) -> bool:
        """Whether the 8-byte-key acceleration is enabled."""
        return self._accelerated

    @property
    def array(self) -> np.ndarray:
        """The underlying suffix array as an int64 numpy array."""
        return self._sa

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, index: int) -> int:
        return int(self._sa[index])

    def suffix(self, rank: int, limit: Optional[int] = None) -> bytes:
        """Return the suffix with the given rank, optionally truncated."""
        start = int(self._sa[rank])
        if limit is None:
            return self._text[start:]
        return self._text[start : start + limit]

    # ------------------------------------------------------------------
    # Interval refinement (the paper's ``Refine``)
    # ------------------------------------------------------------------
    def full_interval(self) -> SuffixInterval:
        """The interval covering every suffix (the initial ``[1, len(d)]``)."""
        return SuffixInterval(0, self._n - 1) if self._n else _EMPTY_INTERVAL

    def refine(self, interval: SuffixInterval, offset: int, byte: int) -> SuffixInterval:
        """Narrow ``interval`` to suffixes whose ``offset``-th byte equals ``byte``.

        This is the ``Refine(lb, rb, j - i, x[j])`` operation from Figure 1
        of the paper: all suffixes in ``interval`` are assumed to share their
        first ``offset`` bytes with the pattern; the returned interval
        contains exactly those whose next byte equals ``byte``.  An empty
        interval is returned when no suffix matches.
        """
        if interval.is_empty:
            return _EMPTY_INTERVAL
        lb = self._lower_bound(interval.lb, interval.rb, offset, byte)
        if lb > interval.rb:
            return _EMPTY_INTERVAL
        pos = int(self._sa[lb]) + offset
        if pos >= self._n or self._text[pos] != byte:
            return _EMPTY_INTERVAL
        rb = self._upper_bound(lb, interval.rb, offset, byte)
        return SuffixInterval(lb, rb)

    def _byte_at(self, rank: int, offset: int) -> int:
        """Byte at ``offset`` within the suffix of the given rank, or -1 past the end."""
        pos = int(self._sa[rank]) + offset
        if pos >= self._n:
            return -1
        return self._text[pos]

    def _lower_bound(self, lo: int, hi: int, offset: int, byte: int) -> int:
        """Smallest rank in ``[lo, hi]`` whose byte at ``offset`` is >= ``byte``."""
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._byte_at(mid, offset) < byte:
                lo = mid + 1
            else:
                hi = mid - 1
        return lo

    def _upper_bound(self, lo: int, hi: int, offset: int, byte: int) -> int:
        """Largest rank in ``[lo, hi]`` whose byte at ``offset`` is <= ``byte``."""
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._byte_at(mid, offset) <= byte:
                lo = mid + 1
            else:
                hi = mid - 1
        return hi

    # ------------------------------------------------------------------
    # Acceleration machinery (8-byte suffix keys)
    # ------------------------------------------------------------------
    #: Number of precomputed key levels.  Level ``k`` holds, for every suffix
    #: (in suffix-array order), the 64-bit key of bytes ``8k .. 8k + 7`` of
    #: that suffix; within any interval of suffixes sharing their first
    #: ``8k`` bytes these keys are sorted, so the next 8 characters can be
    #: matched with a single ``searchsorted`` over a slice view.
    _MAX_LEVELS = 4

    #: Intervals at most this large may be advanced by gathering ad-hoc keys
    #: at a non-precomputed offset; larger intervals fall back to per-byte
    #: refinement (which shrinks them quickly at logarithmic cost).
    _GATHER_MAX = 4096

    def _ensure_keys(self) -> np.ndarray:
        """Precompute the level-0 keys (first 8 bytes of every suffix)."""
        if self._prefix_keys is not None:
            return self._prefix_keys
        text_array = np.frombuffer(self._text, dtype=np.uint8)
        self._padded = np.concatenate(
            [text_array, np.zeros((self._MAX_LEVELS + 1) * _KEY_WIDTH, dtype=np.uint8)]
        )
        self._level_keys = {}
        self._prefix_keys = self._keys_at(self._sa, 0)
        self._level_keys[0] = self._prefix_keys
        return self._prefix_keys

    def _get_level_keys(self, level: int) -> np.ndarray:
        """Keys of bytes ``8 * level .. 8 * level + 7`` of every suffix."""
        self._ensure_keys()
        keys = self._level_keys.get(level)
        if keys is None:
            keys = self._keys_at(self._sa, level * _KEY_WIDTH)
            self._level_keys[level] = keys
        return keys

    def _keys_at(self, positions: np.ndarray, offset: int) -> np.ndarray:
        """Big-endian uint64 keys of the 8 bytes at ``positions + offset``.

        Suffixes shorter than 8 bytes are zero-padded; because the padding
        byte (0) is smaller than any real byte that can follow, the keys of
        the suffixes in a shared-prefix interval remain sorted.
        """
        padded = self._padded
        base = positions + offset
        keys = np.zeros(len(positions), dtype=np.uint64)
        for j in range(_KEY_WIDTH):
            keys = (keys << np.uint64(8)) | padded[base + j].astype(np.uint64)
        return keys

    @staticmethod
    def _query_key(query: bytes, start: int) -> np.uint64:
        """The uint64 key of ``query[start:start + 8]`` (must be 8 bytes).

        The value is returned as ``numpy.uint64`` rather than a Python int:
        ``numpy.searchsorted`` compares a plain Python int against a uint64
        array through an inexact common type, which silently loses the low
        bits of the key.
        """
        return np.uint64(int.from_bytes(query[start : start + _KEY_WIDTH], "big"))

    def _extend_match(self, text_pos: int, query: bytes, query_pos: int, limit: int) -> int:
        """Length of the common prefix of ``text[text_pos:]`` and ``query[query_pos:]``.

        Capped at ``limit``.  Uses geometrically growing slice comparisons so
        long matches are compared at C speed instead of byte-by-byte.
        """
        text = self._text
        limit = min(limit, self._n - text_pos)
        matched = 0
        chunk = 32
        while matched < limit:
            step = min(chunk, limit - matched)
            if (
                text[text_pos + matched : text_pos + matched + step]
                == query[query_pos + matched : query_pos + matched + step]
            ):
                matched += step
                chunk *= 2
                continue
            while (
                matched < limit
                and text[text_pos + matched] == query[query_pos + matched]
            ):
                matched += 1
            break
        return matched

    def _scan_interval(
        self,
        interval: SuffixInterval,
        query: bytes,
        start: int,
        matched: int,
        max_len: int,
    ) -> Tuple[int, int]:
        """Pick the longest match among the candidates of a small interval.

        All suffixes in ``interval`` share their first ``matched`` bytes with
        ``query[start:]``; the scan extends each candidate and returns the
        best ``(position, length)``.
        """
        sa = self._sa
        best_position = int(sa[interval.lb])
        best_length = matched
        for rank in range(interval.lb, interval.rb + 1):
            position = int(sa[rank])
            length = matched + self._extend_match(
                position + matched, query, start + matched, max_len - matched
            )
            if length > best_length:
                best_length = length
                best_position = position
                if best_length == max_len:
                    break
        return best_position, best_length

    # ------------------------------------------------------------------
    # Longest-match search (the paper's ``Factor`` inner loop)
    # ------------------------------------------------------------------
    def longest_match(
        self, query: bytes, start: int = 0, limit: Optional[int] = None
    ) -> Tuple[int, int]:
        """Longest prefix of ``query[start:]`` that occurs in the indexed text.

        Parameters
        ----------
        query:
            The document being factorized.
        start:
            Position in ``query`` where matching begins (the factorizer's
            current cursor ``i``).
        limit:
            Optional hard cap on the match length (used to stop factors at
            document boundaries, as the paper's ``Factor`` does).

        Returns
        -------
        tuple[int, int]
            ``(position, length)`` where ``position`` is a starting offset in
            the indexed text and ``length`` the number of matching bytes.
            ``length`` is 0 when not even the first byte occurs in the text;
            ``position`` is then meaningless (callers emit a literal factor).
        """
        n_query = len(query)
        max_len = n_query - start
        if limit is not None:
            max_len = min(max_len, limit)
        if max_len <= 0 or self._n == 0:
            return (0, 0)
        if self._accelerated:
            return self._longest_match_accelerated(query, start, max_len)
        return self._longest_match_refine(query, start, max_len, self.full_interval(), 0)

    def _longest_match_refine(
        self,
        query: bytes,
        start: int,
        max_len: int,
        interval: SuffixInterval,
        matched: int,
    ) -> Tuple[int, int]:
        """Per-character interval refinement — the paper's Factor loop."""
        sa = self._sa
        while matched < max_len:
            if interval.size <= self._SCAN_THRESHOLD:
                # Few candidates left: scanning them directly generalises the
                # ``lb = rb`` shortcut in the paper's Factor function.
                return self._scan_interval(interval, query, start, matched, max_len)
            refined = self.refine(interval, matched, query[start + matched])
            if refined.is_empty:
                break
            interval = refined
            matched += 1
        if matched == 0:
            return (0, 0)
        return (int(sa[interval.lb]), matched)

    def _longest_match_accelerated(
        self, query: bytes, start: int, max_len: int
    ) -> Tuple[int, int]:
        """8-byte-stride variant producing the same greedy longest match."""
        self._ensure_keys()
        sa = self._sa

        matched = 0
        lb, rb = 0, self._n - 1
        while max_len - matched >= _KEY_WIDTH:
            if b"\x00" in query[start + matched : start + matched + _KEY_WIDTH]:
                # Zero bytes in the query could collide with the zero padding
                # used for suffixes shorter than the key span; the
                # per-character path has no such ambiguity, so use it for
                # this (rare) case.
                return self._longest_match_refine(
                    query, start, max_len, SuffixInterval(lb, rb), matched
                )
            level, within = divmod(matched, _KEY_WIDTH)
            interval_size = rb - lb + 1
            if within == 0 and level < self._MAX_LEVELS:
                # Precomputed level: binary search a slice view, no copying.
                keys = self._get_level_keys(level)[lb : rb + 1]
            elif interval_size <= self._GATHER_MAX:
                # Ad-hoc offset: gather the 8-byte keys of the candidates.
                keys = self._keys_at(sa[lb : rb + 1], matched)
            else:
                # Large interval at an unaligned offset: one character of
                # ordinary refinement shrinks it at logarithmic cost.
                refined = self.refine(
                    SuffixInterval(lb, rb), matched, query[start + matched]
                )
                if refined.is_empty:
                    return (int(sa[lb]), matched) if matched else (0, 0)
                lb, rb = refined.lb, refined.rb
                matched += 1
                continue

            query_key = self._query_key(query, start + matched)
            left = int(keys.searchsorted(query_key, side="left"))
            right = int(keys.searchsorted(query_key, side="right")) - 1
            if left > right:
                # The next 8 bytes do not match in full; finish with
                # per-character refinement inside the current interval.
                return self._longest_match_refine(
                    query, start, max_len, SuffixInterval(lb, rb), matched
                )
            candidate = int(sa[lb + left])
            # Guard against zero-padding artefacts near the end of the text:
            # verify the 8 bytes really are present.
            if (
                self._text[candidate + matched : candidate + matched + _KEY_WIDTH]
                != query[start + matched : start + matched + _KEY_WIDTH]
            ):
                return self._longest_match_refine(
                    query, start, max_len, SuffixInterval(lb, rb), matched
                )
            lb, rb = lb + left, lb + right
            matched += _KEY_WIDTH
            if rb - lb + 1 <= self._SCAN_THRESHOLD:
                return self._scan_interval(
                    SuffixInterval(lb, rb), query, start, matched, max_len
                )

        # Fewer than 8 bytes remain (or remained from the start): finish with
        # per-character refinement, which also handles matched == 0 correctly.
        return self._longest_match_refine(
            query, start, max_len, SuffixInterval(lb, rb), matched
        )

    # ------------------------------------------------------------------
    # Pattern queries (used by tests and the dictionary statistics)
    # ------------------------------------------------------------------
    def find_all(self, pattern: bytes) -> Iterator[int]:
        """Yield every starting position of ``pattern`` in the indexed text."""
        if not pattern:
            return
        interval = self.full_interval()
        for offset, byte in enumerate(pattern):
            interval = self.refine(interval, offset, byte)
            if interval.is_empty:
                return
        for rank in range(interval.lb, interval.rb + 1):
            yield int(self._sa[rank])

    def count(self, pattern: bytes) -> int:
        """Number of occurrences of ``pattern`` in the indexed text."""
        if not pattern:
            return 0
        interval = self.full_interval()
        for offset, byte in enumerate(pattern):
            interval = self.refine(interval, offset, byte)
            if interval.is_empty:
                return 0
        return interval.size

    # ------------------------------------------------------------------
    # LCP array (used by dictionary statistics and tests)
    # ------------------------------------------------------------------
    def lcp_array(self) -> np.ndarray:
        """Longest-common-prefix array via Kasai's algorithm.

        ``lcp[i]`` is the length of the longest common prefix of the suffixes
        of ranks ``i - 1`` and ``i`` (``lcp[0]`` is 0 by convention).
        """
        n = self._n
        lcp = np.zeros(n, dtype=np.int64)
        if n == 0:
            return lcp
        rank = np.empty(n, dtype=np.int64)
        rank[self._sa] = np.arange(n, dtype=np.int64)
        text = self._text
        h = 0
        for i in range(n):
            r = rank[i]
            if r > 0:
                j = int(self._sa[r - 1])
                while i + h < n and j + h < n and text[i + h] == text[j + h]:
                    h += 1
                lcp[r] = h
                if h > 0:
                    h -= 1
            else:
                h = 0
        return lcp
