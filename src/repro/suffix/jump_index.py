"""Compact jump-start index: a numpy open-addressing hash table.

The jump-start index maps the leading k-gram key of every dictionary suffix
to its precomputed suffix-array interval, so the first step of a factor
search lands inside the exact interval a full binary search would reach in
O(1).  PR 1 implemented it as a Python ``dict`` — fast to probe but costing
on the order of a hundred bytes per distinct key (boxed ``int`` keys, tuple
values, dict slots), which is why it was hard-gated to dictionaries of at
most 1 MiB.  The paper's RLZ design lives on *multi-megabyte* dictionaries,
exactly the ones the gate excluded.

:class:`CompactJumpIndex` stores the same mapping in three flat numpy
arrays:

* ``starts`` — ``int32`` run-start positions of the deduplicated keys in
  the (sorted) per-suffix key array, with a final sentinel entry equal to
  the number of suffixes, so run ``i`` covers the suffix-array interval
  ``[starts[i], starts[i + 1] - 1]``;
* ``table`` — an open-addressing ``int32`` hash table (linear probing,
  Fibonacci hashing, load factor <= 2/3) whose slots hold run indexes, with
  ``-1`` marking an empty slot;
* a *borrowed* reference to the caller's sorted ``uint64`` key array, used
  to verify the key of a probed run — no second copy of the keys is stored.

That puts the overhead at roughly 10 bytes per distinct key (4 B per run
start plus ~1.5 x 4 B of hash slots), against ~100+ B/key for the dict —
small enough that the index is built for every dictionary size.

Construction is fully vectorized: run boundaries come from one
``np.flatnonzero`` over the key deltas, and the hash table is filled by
rounds of vectorized linear probing (each round scatters every still-pending
run into its current slot, keeps the winners, and advances the rest by one
slot).  The number of rounds equals the longest probe chain, a small
constant at this load factor.

Lookups are scalar and allocation-free: the hot loops probe through
``memoryview``s of the arrays, so each probe is two or three C-level integer
reads with no numpy scalar boxing.  ``get`` has the same signature and
return convention as ``dict.get`` — the factorization loops accept either
implementation unchanged.

A small **probe cache** (bounded map of the last ``probe_cache`` distinct
keys, hits and misses both) sits in front of the table: web collections
repeat boilerplate, so factor starts revisit the same leading k-grams, and
a one-dict-get answer for a hot key shaves the ~0.5–1.5 µs
memoryview-probe cost the ROADMAP flags.  Hits refresh a key's position in
the eviction order, so repeatedly-probed keys are never the ones evicted.
``probe_cache_info()`` exposes hit/miss counters; ``probe_cache=0``
disables the layer.

:meth:`get_batch` is the vectorized companion for the factorization fast
path: it probes a whole block of query-offset keys per call with a few
rounds of numpy gathers (one per linear-probe distance) instead of one
memoryview walk per offset, and tallies its hits/misses separately.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["CompactJumpIndex"]

#: Fibonacci-hashing multiplier (odd, ~2^64 / golden ratio): multiplying by
#: it and keeping the high bits spreads both full 64-bit keys and the small
#: shifted (4-byte) keys evenly over the table.
_FIB_MULTIPLIER = 0x9E3779B97F4A7C15
_MASK_64 = (1 << 64) - 1

#: Cached "this key is absent" marker (distinct from None, which callers
#: may pass — and expect back — as the ``default``).
_ABSENT = object()


class CompactJumpIndex:
    """Map sorted uint64 suffix keys to their suffix-array intervals.

    Parameters
    ----------
    sorted_keys:
        The per-suffix key array in suffix-array order (which sorts it by
        key value).  The array is borrowed, not copied; it must stay alive
        and unmodified for the lifetime of the index.
    shift:
        Right-shift applied to every key before indexing.  ``0`` indexes the
        full 8-byte keys; ``32`` indexes their leading 4 bytes (the 4-gram
        companion index).  Shifting preserves the sort order.
    probe_cache:
        How many recent probe keys (hits and misses) to remember in the
        front cache; ``0`` disables it.
    """

    __slots__ = (
        "_keys",
        "_starts",
        "_table",
        "_shift",
        "_hash_shift",
        "_slot_mask",
        "_entries",
        "_keys_view",
        "_starts_view",
        "_table_view",
        "_probe_cache",
        "_probe_cache_cap",
        "_probe_hits",
        "_probe_misses",
        "_batch_hits",
        "_batch_misses",
    )

    def __init__(
        self, sorted_keys: np.ndarray, shift: int = 0, probe_cache: int = 16
    ) -> None:
        keys = np.ascontiguousarray(sorted_keys, dtype=np.uint64)
        n = len(keys)
        if n >= (1 << 31):
            raise ValueError("CompactJumpIndex requires fewer than 2**31 suffixes")
        effective = keys >> np.uint64(shift) if shift else keys
        if n:
            boundaries = np.flatnonzero(effective[1:] != effective[:-1]) + 1
            starts = np.empty(len(boundaries) + 2, dtype=np.int32)
            starts[0] = 0
            starts[1:-1] = boundaries
            starts[-1] = n
        else:
            starts = np.zeros(1, dtype=np.int32)
        entries = len(starts) - 1

        # Power-of-two table size with load factor <= 2/3.
        size = 8
        while size * 2 < entries * 3:
            size *= 2
        log_size = size.bit_length() - 1
        table = np.full(size, -1, dtype=np.int32)

        if entries:
            run_keys = effective[starts[:-1].astype(np.int64)]
            slots = (
                (run_keys * np.uint64(_FIB_MULTIPLIER)) >> np.uint64(64 - log_size)
            ).astype(np.int64)
            pending = np.arange(entries, dtype=np.int32)
            # Vectorized linear probing: every round, each pending run tries
            # its current slot; runs that land in an empty slot (and win the
            # scatter among same-slot contenders) are done, the rest advance
            # one slot.  Rounds = longest probe chain.
            while pending.size:
                empty = table[slots] < 0
                if empty.any():
                    table[slots[empty]] = pending[empty]
                placed = table[slots] == pending
                remaining = ~placed
                pending = pending[remaining]
                slots = (slots[remaining] + 1) & (size - 1)

        self._keys = keys
        self._starts = starts
        self._table = table
        self._shift = int(shift)
        self._hash_shift = 64 - log_size
        self._slot_mask = size - 1
        self._entries = entries
        # Memoryviews give C-level scalar reads (plain Python ints) without
        # numpy scalar boxing — the probe loop runs a few hundred ns.
        self._keys_view = memoryview(keys)
        self._starts_view = memoryview(starts)
        self._table_view = memoryview(table)
        if probe_cache < 0:
            raise ValueError("probe_cache must be non-negative")
        self._probe_cache: Optional[Dict[int, object]] = (
            {} if probe_cache else None
        )
        self._probe_cache_cap = int(probe_cache)
        self._probe_hits = 0
        self._probe_misses = 0
        self._batch_hits = 0
        self._batch_misses = 0

    # ------------------------------------------------------------------
    # Lookup (the hot path)
    # ------------------------------------------------------------------
    def get(self, key: int, default=None) -> Optional[Tuple[int, int]]:
        """The suffix-array interval ``(lb, rb)`` of ``key``, or ``default``.

        Same contract as the dict-based index: ``key`` is the (shifted)
        big-endian integer value of the query's leading window.
        """
        cache = self._probe_cache
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                self._probe_hits += 1
                # Refresh the key's FIFO position: without this, a hot key
                # keeps its original insertion slot and is evicted as soon as
                # ``capacity`` distinct colder keys pass through after it —
                # repeated hits then stop protecting exactly the keys the
                # cache exists for.  Moving it to the back on every hit makes
                # eviction pick the least-recently-*used* key instead.
                del cache[key]
                cache[key] = cached
                return default if cached is _ABSENT else cached
            self._probe_misses += 1
        table = self._table_view
        starts = self._starts_view
        keys = self._keys_view
        shift = self._shift
        mask = self._slot_mask
        slot = ((key * _FIB_MULTIPLIER) & _MASK_64) >> self._hash_shift
        while True:
            run = table[slot]
            if run < 0:
                result = None
                break
            lb = starts[run]
            if (keys[lb] >> shift) == key:
                result = (lb, starts[run + 1] - 1)
                break
            slot = (slot + 1) & mask
        if cache is not None:
            if len(cache) >= self._probe_cache_cap:
                # Evict the front of the insertion order; hits re-append
                # their key above, so this is the least-recently-used one.
                cache.pop(next(iter(cache)))
            cache[key] = _ABSENT if result is None else result
        return default if result is None else result

    def get_batch(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized probe of many (shifted) keys in one call.

        Returns two ``int64`` arrays ``(lbs, rbs)`` aligned with ``keys``;
        absent keys are marked ``-1`` in both.  The probe runs the same
        Fibonacci-hash + linear-probe scheme as :meth:`get`, but one numpy
        round per probe distance: every round gathers the table slot of all
        still-unresolved keys at once, so a whole block of query offsets
        costs a handful of vectorized passes instead of one memoryview walk
        per offset.  Hits and misses are tallied separately from the scalar
        path (see :meth:`probe_cache_info`); the front cache is bypassed —
        batch callers read the results out of the returned arrays instead.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        count = len(keys)
        lbs = np.full(count, -1, dtype=np.int64)
        rbs = np.full(count, -1, dtype=np.int64)
        if count == 0:
            return lbs, rbs
        if self._entries == 0:
            self._batch_misses += count
            return lbs, rbs
        table = self._table
        starts = self._starts
        stored = self._keys
        shift = np.uint64(self._shift)
        slots = (
            (keys * np.uint64(_FIB_MULTIPLIER)) >> np.uint64(self._hash_shift)
        ).astype(np.int64)
        pending = np.arange(count, dtype=np.int64)
        hits = 0
        while pending.size:
            runs = table[slots[pending]]
            occupied = runs >= 0
            # Empty slot: the key is definitively absent (stays -1).
            if not occupied.all():
                pending = pending[occupied]
                runs = runs[occupied]
            if not pending.size:
                break
            run_lbs = starts[runs].astype(np.int64)
            run_keys = stored[run_lbs]
            if self._shift:
                run_keys = run_keys >> shift
            matched = run_keys == keys[pending]
            if matched.any():
                found = pending[matched]
                found_runs = runs[matched]
                lbs[found] = run_lbs[matched]
                rbs[found] = starts[found_runs + 1].astype(np.int64) - 1
                hits += len(found)
                pending = pending[~matched]
            # Collision: advance the survivors one slot and retry.
            if pending.size:
                slots[pending] = (slots[pending] + 1) & self._slot_mask
        self._batch_hits += hits
        self._batch_misses += count - hits
        return lbs, rbs

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        """Number of distinct keys."""
        return self._entries

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shift(self) -> int:
        """Right-shift applied to keys before indexing (0 or 32 in practice)."""
        return self._shift

    @property
    def table_size(self) -> int:
        """Number of hash slots (a power of two)."""
        return self._slot_mask + 1

    @property
    def load_factor(self) -> float:
        """Fraction of hash slots in use."""
        return self._entries / self.table_size if self.table_size else 0.0

    @property
    def nbytes(self) -> int:
        """Owned memory in bytes (the borrowed key array is not counted)."""
        return int(self._starts.nbytes + self._table.nbytes)

    def probe_cache_info(self) -> Dict[str, int]:
        """Counters of the probe layers (all zero when unused).

        ``hits``/``misses`` count the scalar front cache; ``batch_hits``/
        ``batch_misses`` count keys resolved through :meth:`get_batch`
        (which bypasses the cache entirely).
        """
        return {
            "hits": self._probe_hits,
            "misses": self._probe_misses,
            "size": len(self._probe_cache) if self._probe_cache is not None else 0,
            "capacity": self._probe_cache_cap,
            "batch_hits": self._batch_hits,
            "batch_misses": self._batch_misses,
        }

    def items(self):
        """Yield every ``(key, (lb, rb))`` pair (test/debug helper)."""
        starts = self._starts
        keys = self._keys
        shift = self._shift
        for run in range(self._entries):
            lb = int(starts[run])
            yield int(keys[lb]) >> shift, (lb, int(starts[run + 1]) - 1)
