"""Suffix array construction by prefix doubling, vectorised with numpy.

The Manber-Myers prefix-doubling algorithm sorts suffixes by their first
``2^k`` characters in round ``k``; each round is a radix-style re-ranking
that numpy can perform with ``argsort`` / ``lexsort`` over whole arrays.  The
total cost is O(n log n) with very small Python-level overhead, which makes
it the default construction for the multi-megabyte RLZ dictionaries used in
this reproduction (the pure-Python SA-IS implementation in
:mod:`repro.suffix.sais` is linear-time but dominated by interpreter
overhead).

The output is identical to :func:`repro.suffix.sais.sais`; the two are
cross-verified by the test suite on random and adversarial inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["suffix_array_doubling"]


def suffix_array_doubling(data: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Return the suffix array of ``data`` as an ``int64`` numpy array.

    Parameters
    ----------
    data:
        Text to index.  ``bytes``/``bytearray`` are interpreted as unsigned
        byte sequences; a numpy integer array is used as-is (values must be
        non-negative).

    Returns
    -------
    numpy.ndarray
        Array of suffix start positions in lexicographic order of the
        corresponding suffixes (no sentinel entry).
    """
    if isinstance(data, (bytes, bytearray)):
        text = np.frombuffer(bytes(data), dtype=np.uint8).astype(np.int64)
    else:
        text = np.asarray(data, dtype=np.int64)
        if text.size and text.min() < 0:
            raise ValueError("suffix_array_doubling requires non-negative symbols")

    n = text.size
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)

    # Initial ranks are the symbols themselves; ties are broken in later
    # rounds.  ``rank`` always holds, for each position, the rank of the
    # prefix of length ``k`` starting there; -1 is used as the rank of the
    # empty suffix beyond the end of the text.
    rank = np.unique(text, return_inverse=True)[1].astype(np.int64)
    suffix_array = np.argsort(rank, kind="stable").astype(np.int64)

    k = 1
    positions = np.arange(n, dtype=np.int64)
    while True:
        # Rank of the second half of each 2k-prefix (-1 when it runs off the
        # end of the text, which sorts before every real rank).
        second = np.full(n, -1, dtype=np.int64)
        tail = positions + k
        in_range = tail < n
        second[in_range] = rank[tail[in_range]]

        # Sort positions by (rank, second-half rank).  ``lexsort`` sorts by
        # the last key first, so the primary key goes last.
        suffix_array = np.lexsort((second, rank)).astype(np.int64)

        # Re-rank: a suffix gets a new rank strictly greater than its
        # predecessor in sorted order iff its (rank, second) pair differs.
        sorted_rank = rank[suffix_array]
        sorted_second = second[suffix_array]
        new_rank_sorted = np.empty(n, dtype=np.int64)
        new_rank_sorted[0] = 0
        changed = (sorted_rank[1:] != sorted_rank[:-1]) | (
            sorted_second[1:] != sorted_second[:-1]
        )
        new_rank_sorted[1:] = np.cumsum(changed)

        rank = np.empty(n, dtype=np.int64)
        rank[suffix_array] = new_rank_sorted

        if new_rank_sorted[-1] == n - 1:
            # All ranks distinct: the order is final.
            break
        k *= 2
        if k >= n:
            break

    return suffix_array
