"""Linear-time suffix array construction using the SA-IS algorithm.

SA-IS (Suffix Array construction by Induced Sorting, Nong, Zhang & Chan,
2009) builds the suffix array of a sequence in O(n) time.  This module
contains a dependency-free, pure-Python implementation used as the
*reference* construction: it is asymptotically optimal and simple to verify,
but its constant factors in CPython are high, so the library defaults to the
vectorised prefix-doubling construction in :mod:`repro.suffix.doubling` for
dictionaries above a few hundred kilobytes.  Both constructions are
cross-checked in the test suite.

The public entry point is :func:`sais`, which accepts ``bytes`` (or any
sequence of small non-negative integers) and returns a list of suffix start
positions in lexicographic order of the suffixes.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["sais"]

# Type markers for the induced-sorting classification.
_L_TYPE = 0
_S_TYPE = 1


def sais(data: Sequence[int] | bytes) -> List[int]:
    """Return the suffix array of ``data`` using the SA-IS algorithm.

    Parameters
    ----------
    data:
        The text whose suffixes are to be sorted.  ``bytes`` and
        ``bytearray`` are accepted directly; any other sequence must contain
        non-negative integers.

    Returns
    -------
    list[int]
        Positions of the suffixes of ``data`` in ascending lexicographic
        order.  The empty suffix is *not* included, matching the paper's
        convention (``SA`` has exactly ``len(data)`` entries).
    """
    if isinstance(data, (bytes, bytearray)):
        symbols = list(data)
        alphabet_size = 256
    else:
        symbols = list(data)
        if symbols and min(symbols) < 0:
            raise ValueError("sais requires non-negative integer symbols")
        alphabet_size = (max(symbols) + 1) if symbols else 1

    if not symbols:
        return []
    if len(symbols) == 1:
        return [0]

    # Append a unique sentinel smaller than every real symbol.  Working with
    # the shifted alphabet keeps the recursion uniform.
    shifted = [s + 1 for s in symbols]
    shifted.append(0)
    sa = _sais_recursive(shifted, alphabet_size + 1)
    # Drop the sentinel suffix, which always sorts first.
    return sa[1:]


def _classify(text: Sequence[int]) -> List[int]:
    """Classify each suffix as S-type or L-type.

    A suffix is S-type if it is lexicographically smaller than the suffix
    starting one position later, L-type otherwise.  The sentinel suffix is
    S-type by definition.
    """
    n = len(text)
    types = [_S_TYPE] * n
    for i in range(n - 2, -1, -1):
        if text[i] > text[i + 1]:
            types[i] = _L_TYPE
        elif text[i] < text[i + 1]:
            types[i] = _S_TYPE
        else:
            types[i] = types[i + 1]
    return types


def _is_lms(types: Sequence[int], i: int) -> bool:
    """Return True when position ``i`` is a left-most S-type position."""
    return i > 0 and types[i] == _S_TYPE and types[i - 1] == _L_TYPE


def _bucket_sizes(text: Sequence[int], alphabet_size: int) -> List[int]:
    sizes = [0] * alphabet_size
    for symbol in text:
        sizes[symbol] += 1
    return sizes


def _bucket_heads(sizes: Sequence[int]) -> List[int]:
    heads = []
    offset = 0
    for size in sizes:
        heads.append(offset)
        offset += size
    return heads


def _bucket_tails(sizes: Sequence[int]) -> List[int]:
    tails = []
    offset = 0
    for size in sizes:
        offset += size
        tails.append(offset - 1)
    return tails


def _induce_sort_l(text, sa, types, sizes) -> None:
    heads = _bucket_heads(sizes)
    for i in range(len(sa)):
        j = sa[i]
        if j is None or j <= 0:
            continue
        j -= 1
        if types[j] != _L_TYPE:
            continue
        symbol = text[j]
        sa[heads[symbol]] = j
        heads[symbol] += 1


def _induce_sort_s(text, sa, types, sizes) -> None:
    tails = _bucket_tails(sizes)
    for i in range(len(sa) - 1, -1, -1):
        j = sa[i]
        if j is None or j <= 0:
            continue
        j -= 1
        if types[j] != _S_TYPE:
            continue
        symbol = text[j]
        sa[tails[symbol]] = j
        tails[symbol] -= 1


def _lms_substrings_equal(text, types, a: int, b: int) -> bool:
    """Compare the LMS substrings starting at ``a`` and ``b`` for equality."""
    n = len(text)
    if a == n - 1 or b == n - 1:
        return a == b
    i = 0
    while True:
        a_is_lms = i > 0 and _is_lms(types, a + i)
        b_is_lms = i > 0 and _is_lms(types, b + i)
        if a_is_lms and b_is_lms:
            return True
        if a_is_lms != b_is_lms:
            return False
        if text[a + i] != text[b + i]:
            return False
        i += 1


def _sais_recursive(text: Sequence[int], alphabet_size: int) -> List[int]:
    """Core SA-IS recursion over an integer text ending in a unique 0 sentinel."""
    n = len(text)
    types = _classify(text)
    sizes = _bucket_sizes(text, alphabet_size)

    # Step 1: place LMS suffixes at the ends of their buckets (approximate
    # order), then induce L and S suffixes from them.
    sa: List[int | None] = [None] * n
    tails = _bucket_tails(sizes)
    for i in range(1, n):
        if _is_lms(types, i):
            symbol = text[i]
            sa[tails[symbol]] = i
            tails[symbol] -= 1
    sa[0] = n - 1  # The sentinel suffix is the smallest.
    _induce_sort_l(text, sa, types, sizes)
    _induce_sort_s(text, sa, types, sizes)

    # Step 2: name the LMS substrings using their induced order.
    lms_order = [pos for pos in sa if pos is not None and _is_lms(types, pos)]
    names: List[int | None] = [None] * n
    current_name = 0
    previous = None
    for pos in lms_order:
        if previous is not None and not _lms_substrings_equal(text, types, previous, pos):
            current_name += 1
        names[pos] = current_name
        previous = pos

    lms_positions = [i for i in range(1, n) if _is_lms(types, i)]
    reduced = [names[pos] for pos in lms_positions]

    # Step 3: sort the LMS suffixes, recursing only if names are not unique.
    # ``reduced`` already ends in the unique smallest name 0 (the sentinel's
    # LMS position is always last and always receives name 0), so it is a
    # valid input for the recursion without appending another sentinel.
    if current_name + 1 == len(reduced):
        reduced_sa = [0] * len(reduced)
        for index, name in enumerate(reduced):
            reduced_sa[name] = index
    else:
        reduced_sa = _sais_recursive(reduced, current_name + 1)

    ordered_lms = [lms_positions[i] for i in reduced_sa]

    # Step 4: final induced sort seeded with exactly-sorted LMS suffixes.
    sa = [None] * n
    tails = _bucket_tails(sizes)
    for pos in reversed(ordered_lms):
        symbol = text[pos]
        sa[tails[symbol]] = pos
        tails[symbol] -= 1
    sa[0] = n - 1
    _induce_sort_l(text, sa, types, sizes)
    _induce_sort_s(text, sa, types, sizes)
    return [pos for pos in sa if pos is not None]
