"""Suffix array substrate: construction algorithms and search facade.

The RLZ factorization (Section 3.2 of the paper) is driven entirely by
pattern matching over the suffix array of the dictionary.  This package
provides:

* :func:`repro.suffix.sais.sais` — linear-time SA-IS construction
  (pure-Python reference implementation);
* :func:`repro.suffix.doubling.suffix_array_doubling` — numpy-vectorised
  prefix-doubling construction (the default for large dictionaries);
* :class:`repro.suffix.suffix_array.SuffixArray` — the facade used by the
  factorizer, exposing interval refinement and longest-match search;
* :class:`repro.suffix.jump_index.CompactJumpIndex` — the array-backed
  jump-start index that serves multi-MB dictionaries at ~10 B per key;
* verification helpers in :mod:`repro.suffix.verify`.
"""

from .doubling import suffix_array_doubling
from .jump_index import CompactJumpIndex
from .sais import sais
from .suffix_array import SuffixArray, SuffixInterval
from .verify import is_valid_suffix_array, naive_suffix_array

__all__ = [
    "CompactJumpIndex",
    "SuffixArray",
    "SuffixInterval",
    "is_valid_suffix_array",
    "naive_suffix_array",
    "sais",
    "suffix_array_doubling",
]
