"""Verification helpers for suffix arrays.

These are used by the test suite and by the ablation benchmarks to certify
that the two construction algorithms (SA-IS and prefix doubling) agree, and
that any array claimed to be a suffix array actually is one.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["is_valid_suffix_array", "naive_suffix_array"]


def naive_suffix_array(text: bytes) -> list[int]:
    """Suffix array by direct sorting of suffixes (quadratic; tests only)."""
    return sorted(range(len(text)), key=lambda i: text[i:])


def is_valid_suffix_array(text: bytes, suffix_array: Sequence[int]) -> bool:
    """Return True when ``suffix_array`` is the suffix array of ``text``.

    The check verifies three properties:

    1. the array is a permutation of ``0 .. len(text) - 1``;
    2. consecutive suffixes are in non-decreasing lexicographic order;
    3. (implied by 1 and 2 plus distinctness of suffixes) the order is
       strictly increasing.
    """
    n = len(text)
    arr = np.asarray(suffix_array, dtype=np.int64)
    if arr.shape != (n,):
        return False
    if n == 0:
        return True
    if not np.array_equal(np.sort(arr), np.arange(n, dtype=np.int64)):
        return False
    for previous, current in zip(arr[:-1], arr[1:]):
        if not text[int(previous):] < text[int(current):]:
            return False
    return True
