"""Command-line entry points.

Four console scripts are installed with the package:

* ``repro``          — umbrella command:
  ``repro corpus|compress|bench|serve-bench ...``;
* ``repro-corpus``  — generate a synthetic collection and write it to a
  REPRO-WARC file;
* ``repro-compress`` — compress a REPRO-WARC collection with rlz (or a
  baseline) into a container file, and optionally verify it by decoding;
* ``repro-bench``   — run the paper's experiments and print/save the result
  tables.

``repro serve-bench`` runs the serving-front benchmark (concurrent async
clients through :class:`repro.api.AsyncRlzArchive` vs a sequential ``get``
loop) and can append its record to the fast-path JSON history.

``repro serve`` puts a built archive behind a socket
(:class:`repro.serve.RlzServer`); ``repro get`` retrieves documents from
either a local archive path or — with ``--connect host:port`` — a running
server, through the same :class:`repro.api.ArchiveView` code path.

``repro verify PATH`` scans a container end-to-end against its embedded
CRC32 checksum table (:func:`repro.storage.verify_container`) and exits
non-zero if any section or payload extent fails — a single flipped byte
anywhere in a checksummed extent is detected.

``repro partition`` builds a partitioned fleet (one collection in, N
per-shard containers out, each holding only the doc ids its arc of the
consistent-hash ring owns); ``repro rebalance`` live-streams a joining
shard's arc onto it and bumps the fleet's map epoch with zero failed
reads; ``repro stats --connect host:port [--watch N]`` tails a running
server's HEALTH snapshot (queue depth, service-time EWMA, deadline
rejections, shard-map epoch).

``repro search`` ranks documents with BM25 against the posting-list
sidecar written by ``--search-index`` builds — locally against a container
path, or over the wire (``--connect``) where a comma-separated endpoint
list fans the query out across every shard and merges the per-shard top-k
into exactly the single-index ranking, optionally with query-biased
snippets decoded through the windowed partial-decode path.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import signal
import sys
from pathlib import Path
from typing import Optional, Sequence

from .api import ArchiveConfig, CacheSpec, RlzArchive, ServeSpec
from .bench.harness import EXPERIMENTS, run_all
from .bench.serving import serving_benchmark
from .core import DictionaryConfig, RlzCompressor
from .corpus import (
    generate_gov_collection,
    generate_wikipedia_collection,
    read_warc,
    url_sorted,
    write_warc,
)
from .errors import ReproError
from .storage import BlockedStore, BlockedStoreConfig, RawStore, RlzStore

__all__ = [
    "corpus_main",
    "compress_main",
    "bench_main",
    "serve_bench_main",
    "bench_load_main",
    "serve_main",
    "get_main",
    "verify_main",
    "partition_main",
    "rebalance_main",
    "search_main",
    "stats_main",
    "check_main",
    "main",
]


def _cache_spec_from_args(args: argparse.Namespace) -> CacheSpec:
    """Build the CacheSpec shared by ``repro serve`` / ``repro get``."""
    if args.cache == "none":
        return CacheSpec()
    return CacheSpec(
        tier=args.cache,
        capacity=args.cache_capacity,
        name=args.cache_name if args.cache == "shared" else None,
    )


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache",
        choices=("none", "lru", "shared"),
        default="none",
        help="decode-cache tier for the opened archive",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=256,
        help="cache capacity (documents for lru, ring slots for shared)",
    )
    parser.add_argument(
        "--cache-name",
        default=None,
        help="shared-memory segment name (shared tier only; lets a fleet of "
        "servers on one machine share a cache)",
    )


def corpus_main(argv: Optional[Sequence[str]] = None) -> int:
    """Generate a synthetic collection and store it as a REPRO-WARC file."""
    parser = argparse.ArgumentParser(
        prog="repro-corpus",
        description="Generate a synthetic GOV2-like or Wikipedia-like collection.",
    )
    parser.add_argument("output", help="path of the REPRO-WARC file to write")
    parser.add_argument(
        "--kind", choices=("gov", "wikipedia"), default="gov", help="collection flavour"
    )
    parser.add_argument("--documents", type=int, default=500, help="number of documents")
    parser.add_argument("--seed", type=int, default=42, help="generator seed")
    parser.add_argument(
        "--url-sort", action="store_true", help="write the collection in URL-sorted order"
    )
    args = parser.parse_args(argv)

    if args.kind == "gov":
        collection = generate_gov_collection(num_documents=args.documents, seed=args.seed)
    else:
        collection = generate_wikipedia_collection(
            num_documents=args.documents, seed=args.seed
        )
    if args.url_sort:
        collection = url_sorted(collection)
    written = write_warc(collection, args.output)
    print(
        f"wrote {len(collection)} documents ({collection.total_size:,} bytes of content, "
        f"{written:,} bytes on disk) to {args.output}"
    )
    return 0


def compress_main(argv: Optional[Sequence[str]] = None) -> int:
    """Compress a REPRO-WARC collection into a container file."""
    parser = argparse.ArgumentParser(
        prog="repro-compress",
        description="Compress a REPRO-WARC collection with rlz or a baseline.",
    )
    parser.add_argument("input", help="REPRO-WARC file produced by repro-corpus")
    parser.add_argument("output", help="container file to write")
    parser.add_argument(
        "--method",
        choices=("rlz", "zlib", "lzma", "ascii"),
        default="rlz",
        help="compression method",
    )
    parser.add_argument("--scheme", default="ZZ", help="rlz pair-coding scheme (e.g. ZV)")
    parser.add_argument(
        "--dictionary-size", type=int, default=1024 * 1024, help="rlz dictionary bytes"
    )
    parser.add_argument("--sample-size", type=int, default=1024, help="rlz sample bytes")
    parser.add_argument(
        "--block-size", type=float, default=0.5, help="baseline block size in MB"
    )
    parser.add_argument(
        "--verify", action="store_true", help="decode every document and compare"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="rlz encode worker processes (1 serial, 0 all cores)",
    )
    parser.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for --workers pools "
        "(default: fork where available, else spawn)",
    )
    parser.add_argument(
        "--share-memory",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="share the dictionary + suffix array with spawn/forkserver "
        "workers via multiprocessing.shared_memory instead of rebuilding "
        "per worker (default: auto)",
    )
    parser.add_argument(
        "--jump-index",
        choices=("auto", "dict", "compact", "off"),
        default="auto",
        help="jump-start index representation (auto: hash dict for small "
        "dictionaries, compact numpy index for multi-MB ones)",
    )
    parser.add_argument(
        "--search-index",
        action="store_true",
        help="also write the <output>.idx posting-list sidecar so the "
        "archive can answer `repro search` / SEARCH requests (rlz only)",
    )
    args = parser.parse_args(argv)
    if args.workers < 0:
        parser.error(
            "--workers must be None/1 (serial), 0 (all cores) or a positive "
            f"pool size, got {args.workers}"
        )
    if args.search_index and args.method != "rlz":
        parser.error("--search-index requires --method rlz")

    collection = read_warc(args.input)
    if args.method == "rlz":
        compressor = RlzCompressor(
            dictionary_config=DictionaryConfig(
                size=args.dictionary_size, sample_size=args.sample_size
            ),
            scheme=args.scheme,
            workers=args.workers,
            start_method=args.start_method,
            share_memory=args.share_memory,
            jump_start=args.jump_index,
        )
        compressed = compressor.compress(collection)
        RlzStore.write(compressed, args.output)
        if args.search_index:
            from .search.serving import index_sidecar_path, write_postings

            sidecar = index_sidecar_path(Path(args.output))
            write_postings(
                ((document.doc_id, document.content) for document in collection),
                sidecar,
            )
            print(f"search index: {sidecar} ({sidecar.stat().st_size:,} bytes)")
        store = RlzStore.open(args.output)
        percent = store.compression_percent(include_dictionary=True)
    elif args.method == "ascii":
        RawStore.build(collection, args.output)
        store = RawStore.open(args.output)
        percent = 100.0
    else:
        config = BlockedStoreConfig(
            compressor=args.method, block_size=int(args.block_size * 1024 * 1024)
        )
        BlockedStore.build(collection, args.output, config)
        store = BlockedStore.open(args.output)
        percent = store.compression_percent()

    status = 0
    if args.verify:
        failures = sum(
            1 for document in collection if store.get(document.doc_id) != document.content
        )
        if failures:
            print(f"VERIFY FAILED: {failures} documents did not round-trip", file=sys.stderr)
            status = 1
        else:
            print("verify: all documents round-tripped")
    store.close()
    print(
        f"compressed {collection.total_size:,} bytes -> {Path(args.output).stat().st_size:,} "
        f"bytes on disk ({percent:.2f}% encoding)"
    )
    return status


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the paper's experiments."""
    parser = argparse.ArgumentParser(
        prog="repro-bench", description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=f"experiment ids to run (default: all). Known: {', '.join(sorted(EXPERIMENTS))}",
    )
    parser.add_argument(
        "--output", default="bench_results.txt", help="file to append rendered tables to"
    )
    args = parser.parse_args(argv)
    run_all(output_path=args.output, experiments=args.experiments or None)
    print(f"\nresults appended to {args.output}")
    return 0


def serve_bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the serving-front benchmark (async clients vs sequential loop)."""
    parser = argparse.ArgumentParser(
        prog="repro serve-bench",
        description=(
            "Benchmark the async serving front (repro.api.AsyncRlzArchive: "
            "decode-cache tier, thread-pool offload, request coalescing) "
            "against the legacy sequential get loop on a repeated-access "
            "query log.  Scale with REPRO_BENCH_SCALE."
        ),
    )
    parser.add_argument(
        "--clients", type=int, default=8, help="concurrent async client sessions"
    )
    parser.add_argument(
        "--repeats", type=int, default=4, help="times the log touches each document"
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=128, help="LRU tier capacity (documents)"
    )
    parser.add_argument("--scheme", default="ZZ", help="rlz pair-coding scheme")
    parser.add_argument(
        "--max-workers", type=int, default=None, help="decode thread-pool width"
    )
    parser.add_argument(
        "--output", default="bench_results.txt", help="file to append the table to"
    )
    parser.add_argument(
        "--output-json",
        default=None,
        help="JSON history to append the record to "
        "(e.g. benchmarks/results/fastpath.json)",
    )
    args = parser.parse_args(argv)
    if args.clients <= 0:
        parser.error(f"--clients must be positive, got {args.clients}")
    if args.repeats <= 0:
        parser.error(f"--repeats must be positive, got {args.repeats}")
    if args.cache_capacity <= 0:
        parser.error(f"--cache-capacity must be positive, got {args.cache_capacity}")

    table = serving_benchmark(
        clients=args.clients,
        serving_repeats=args.repeats,
        cache_capacity=args.cache_capacity,
        scheme=args.scheme,
        max_workers=args.max_workers,
        output_json=args.output_json,
    )
    table.print()
    if args.output:
        table.save(args.output)
        print(f"\nresults appended to {args.output}")
    if "served bytes verified against corpus: True" not in "\n".join(table.notes):
        print("VERIFY FAILED: served bytes did not match the corpus", file=sys.stderr)
        return 1
    return 0


def bench_load_main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the open-loop load harness against a live server."""
    from .bench.loadgen import LOAD_SCALES, load_benchmark

    parser = argparse.ArgumentParser(
        prog="repro bench-load",
        description=(
            "Drive a live RlzServer with an open-loop Poisson request "
            "stream (arrivals scheduled up front, latency measured from "
            "the scheduled arrival — coordinated-omission-free) and report "
            "p50/p99/p99.9 latency plus achieved-vs-offered throughput.  "
            "The corpus/archive are built at --scale and served from a "
            "temporary directory on a loopback socket."
        ),
    )
    parser.add_argument(
        "--scale",
        default="tiny",
        choices=sorted(LOAD_SCALES),
        help="corpus size rung (tiny: CI smoke, small: ~100 MB, medium: ~1 GB)",
    )
    parser.add_argument(
        "--rate", type=float, default=None, help="offered requests/second"
    )
    parser.add_argument(
        "--requests", type=int, default=None, help="total requests to offer"
    )
    parser.add_argument("--seed", type=int, default=0, help="arrival/choice RNG seed")
    parser.add_argument("--scheme", default="ZZ", help="rlz pair-coding scheme")
    parser.add_argument(
        "--output", default="bench_results.txt", help="file to append the table to"
    )
    parser.add_argument(
        "--output-json",
        default=None,
        help="JSON history to append the record to "
        "(e.g. benchmarks/results/fastpath.json)",
    )
    parser.add_argument(
        "--p99-bound-ms",
        type=float,
        default=None,
        help="exit non-zero when p99 latency exceeds this bound (CI gate)",
    )
    args = parser.parse_args(argv)
    if args.rate is not None and args.rate <= 0:
        parser.error(f"--rate must be positive, got {args.rate}")
    if args.requests is not None and args.requests <= 0:
        parser.error(f"--requests must be positive, got {args.requests}")

    table = load_benchmark(
        scale=args.scale,
        rate=args.rate,
        requests=args.requests,
        seed=args.seed,
        scheme=args.scheme,
        output_json=args.output_json,
    )
    table.print()
    if args.output:
        table.save(args.output)
        print(f"\nresults appended to {args.output}")

    record = table.record
    if record["errors"]:
        print(f"repro bench-load: {record['errors']} failed requests", file=sys.stderr)
        return 1
    if args.p99_bound_ms is not None:
        p99 = record["latency_ms"]["p99"]
        if p99 > args.p99_bound_ms:
            print(
                f"repro bench-load: p99 {p99:.2f} ms exceeds bound "
                f"{args.p99_bound_ms:.2f} ms",
                file=sys.stderr,
            )
            return 1
    return 0


def _parse_archive_args(parser, texts: Sequence[str]):
    """``repro serve`` positionals: bare paths or ``name=path`` pairs.

    One bare path keeps the single-archive server; anything else builds a
    name→path map for the router (bare paths name themselves by stem).
    """
    if len(texts) == 1 and "=" not in texts[0]:
        return texts[0], None
    archives = {}
    for text in texts:
        name, separator, path = text.partition("=")
        if not separator:
            name, path = Path(text).stem, text
        if not name or not path:
            parser.error(f"archives must be PATH or NAME=PATH, got {text!r}")
        if name in archives:
            parser.error(f"duplicate archive name {name!r}")
        archives[name] = path
    return None, archives


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Serve built archives over a socket until interrupted."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Put built RLZ archives behind a socket (repro.serve.RlzServer). "
            "One PATH serves a single archive; several NAME=PATH pairs serve "
            "a multi-archive router (clients pick with RlzClient(archive=...) "
            "or `repro get --archive`).  Clients connect with "
            "repro.serve.RlzClient or `repro get --connect host:port`.  "
            "SIGINT/SIGTERM shut down gracefully."
        ),
    )
    parser.add_argument(
        "archive",
        nargs="+",
        metavar="PATH|NAME=PATH",
        help="container file(s) written by repro compress; NAME=PATH pairs "
        "host multiple named archives behind one port",
    )
    parser.add_argument("--host", default="127.0.0.1", help="address to bind")
    parser.add_argument(
        "--port", type=int, default=0, help="port to bind (0 = ephemeral, printed)"
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="backpressure gate: concurrent requests served per archive",
    )
    parser.add_argument(
        "--max-workers", type=int, default=None, help="decode thread-pool width"
    )
    parser.add_argument(
        "--drain-seconds",
        type=float,
        default=5.0,
        help="graceful-shutdown wait for in-flight requests",
    )
    parser.add_argument(
        "--default-archive",
        default=None,
        help="archive name served to clients that do not pick one "
        "(multi-archive mode; defaults to the first)",
    )
    _add_cache_arguments(parser)
    args = parser.parse_args(argv)

    from .serve import RlzServer

    single_path, archive_map = _parse_archive_args(parser, args.archive)
    if archive_map is None and args.default_archive is not None:
        parser.error("--default-archive only applies to NAME=PATH archive maps")
    config = ArchiveConfig(
        cache=_cache_spec_from_args(args),
        serve=ServeSpec(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            drain_seconds=args.drain_seconds,
            archives=archive_map,
            default_archive=args.default_archive,
        ),
    )

    async def run() -> None:
        if archive_map is not None:
            server = RlzServer.open_many(
                archive_map,
                config,
                default=args.default_archive,
                max_workers=args.max_workers,
            )
            description = ", ".join(
                f"{name}={path}" for name, path in archive_map.items()
            )
            banner = f"serving {len(archive_map)} archives [{description}]"
        else:
            server = RlzServer.open(
                single_path, config, max_workers=args.max_workers
            )
            banner = (
                f"serving {single_path}"
                f" ({len(server.front.archive)} documents,"
                f" max {args.max_inflight} in-flight)"
            )
        await server.start()
        print(f"{banner} on {server.host}:{server.port}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(signum, stop.set)
        try:
            await stop.wait()
        finally:
            stats = server.stats()
            await server.close()
            print(
                f"shutdown: served {int(stats.get('server_requests', 0))} requests "
                f"over {int(stats.get('server_connections_total', 0))} connections "
                f"({int(stats.get('server_errors', 0))} errors)",
                flush=True,
            )

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    except (ReproError, OSError) as exc:
        # OSError covers bind failures (port in use, bad host) and socket
        # teardown races — one-line errors, not tracebacks.
        print(f"repro serve: {exc}", file=sys.stderr)
        return 1
    return 0


def get_main(argv: Optional[Sequence[str]] = None) -> int:
    """Fetch documents from a local archive or a running server."""
    parser = argparse.ArgumentParser(
        prog="repro get",
        description=(
            "Retrieve documents by ID from an archive — a local container "
            "file, or a running `repro serve` instance via --connect.  Both "
            "paths go through the same ArchiveView code."
        ),
    )
    parser.add_argument(
        "target",
        nargs="+",
        metavar="ARCHIVE|DOC_ID",
        help="without --connect: the local container file followed by "
        "document IDs; with --connect: document IDs only",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="fetch from running repro serve instance(s) instead of a local "
        "file; a comma-separated list fans out through a consistent-hash "
        "ClusterClient",
    )
    parser.add_argument(
        "--archive",
        dest="archive_name",
        default="",
        metavar="NAME",
        help="archive name on a multi-archive server (with --connect)",
    )
    parser.add_argument(
        "--raw",
        action="store_true",
        help="write the raw document bytes to stdout (concatenated, in order)",
    )
    _add_cache_arguments(parser)
    # parse_intermixed_args collects every positional even when flags sit
    # between them (`repro get path --raw 3`), which plain parse_args cannot
    # do for a greedy nargs="+" positional.
    args = parser.parse_intermixed_args(list(argv) if argv is not None else None)

    # The first positional is the archive path unless --connect is given.
    if args.connect is None:
        args.archive, id_texts = args.target[0], args.target[1:]
        if not id_texts:
            parser.error("no document IDs given")
    else:
        args.archive, id_texts = None, args.target
    try:
        args.doc_ids = [int(text) for text in id_texts]
    except ValueError as exc:
        parser.error(f"document IDs must be integers: {exc}")

    if args.connect is not None:
        from .serve import ClusterClient, RlzClient

        if args.cache != "none":
            parser.error(
                "--cache configures a locally opened archive; the server "
                "owns the cache tier when using --connect"
            )
        endpoints = [text.strip() for text in args.connect.split(",") if text.strip()]
        for endpoint in endpoints:
            host, _, port_text = endpoint.rpartition(":")
            if not host or not port_text.isdigit():
                parser.error(f"--connect expects HOST:PORT, got {endpoint!r}")
        if not endpoints:
            parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
        if len(endpoints) == 1:
            host, _, port_text = endpoints[0].rpartition(":")
            view = RlzClient(host, int(port_text), archive=args.archive_name)
        else:
            view = ClusterClient(endpoints, archive=args.archive_name)
        source = args.connect
    else:
        if args.archive_name:
            parser.error("--archive only applies with --connect")
        config = ArchiveConfig(cache=_cache_spec_from_args(args))
        try:
            view = RlzArchive.open(args.archive, config)
        except (OSError, ReproError) as exc:
            print(f"repro get: cannot open {args.archive!r}: {exc}", file=sys.stderr)
            return 1
        source = args.archive

    status = 0
    try:
        documents = view.get_many(args.doc_ids)
        if args.raw:
            for document in documents:
                sys.stdout.buffer.write(document)
            sys.stdout.buffer.flush()
        else:
            for doc_id, document in zip(args.doc_ids, documents):
                print(f"doc {doc_id}: {len(document):,} bytes from {source}")
    except (ReproError, OSError) as exc:
        # OSError covers a dead/unreachable server after retries.
        print(f"repro get: {exc}", file=sys.stderr)
        status = 1
    finally:
        view.close()
    return status


def verify_main(argv: Optional[Sequence[str]] = None) -> int:
    """Scan container files against their embedded checksum tables."""
    parser = argparse.ArgumentParser(
        prog="repro verify",
        description=(
            "Verify the integrity of container files written by repro "
            "compress: every header section and payload extent is checked "
            "against the CRC32 table embedded at build time.  Exits 1 on "
            "the first corrupt file."
        ),
    )
    parser.add_argument(
        "paths", nargs="+", metavar="PATH", help="container file(s) to verify"
    )
    args = parser.parse_args(argv)

    from .errors import CorruptArchiveError, StorageError
    from .storage import verify_container

    status = 0
    for path in args.paths:
        try:
            report = verify_container(path)
        except CorruptArchiveError as exc:
            print(f"repro verify: CORRUPT: {exc}", file=sys.stderr)
            status = 1
        except (StorageError, OSError) as exc:
            print(f"repro verify: cannot verify {path!r}: {exc}", file=sys.stderr)
            status = 1
        else:
            if report["verifiable"]:
                print(
                    f"{path}: OK ({report['store_type']} store, "
                    f"{report['documents']} documents, "
                    f"{report['extents_checked']} extents, "
                    f"{report['bytes_checked']:,} payload bytes verified)"
                )
            else:
                print(
                    f"{path}: legacy {report['format']} container has no "
                    f"checksums; rebuild with this version to enable "
                    f"verification"
                )
    return status


def partition_main(argv: Optional[Sequence[str]] = None) -> int:
    """Split a collection into per-shard partitioned containers."""
    parser = argparse.ArgumentParser(
        prog="repro partition",
        description=(
            "Build a partitioned archive: one REPRO-WARC collection in, N "
            "per-shard container files out, each holding only the doc ids "
            "its arc of the consistent-hash ring owns.  Serve each shard "
            "with `repro serve <shard>.rlz` and read the fleet with "
            "ClusterClient(['shard0@host:port', ...])."
        ),
    )
    parser.add_argument("input", help="REPRO-WARC file produced by repro-corpus")
    parser.add_argument("outdir", help="directory to write the shard containers in")
    parser.add_argument("--shards", type=int, default=2, help="number of shards")
    parser.add_argument(
        "--virtual-nodes",
        type=int,
        default=64,
        help="consistent-hash points per shard (must match the serving ring)",
    )
    parser.add_argument(
        "--per-shard-dictionary",
        action="store_true",
        help="sample one dictionary per shard from its own documents instead "
        "of one shared dictionary from the whole collection",
    )
    parser.add_argument("--scheme", default="ZZ", help="rlz pair-coding scheme (e.g. ZV)")
    parser.add_argument(
        "--dictionary-size", type=int, default=1024 * 1024, help="rlz dictionary bytes"
    )
    parser.add_argument("--sample-size", type=int, default=1024, help="rlz sample bytes")
    parser.add_argument(
        "--labels",
        default=None,
        metavar="LABEL,LABEL,...",
        help="explicit shard labels (default shard0..shardN-1); bare ring ids "
        "or ringid@host:port serving labels",
    )
    parser.add_argument(
        "--search-index",
        action="store_true",
        help="also write a <shard>.rlz.idx posting-list sidecar per shard "
        "(each covering only the documents that shard owns) so the fleet "
        "answers `repro search` / SEARCH fan-out",
    )
    args = parser.parse_args(argv)
    if args.shards <= 0:
        parser.error(f"--shards must be positive, got {args.shards}")

    from .api import DictionarySpec, EncodingSpec, PartitionSpec, SearchSpec
    from .serve.partition import build_partitioned_archives

    labels = None
    if args.labels is not None:
        labels = [text.strip() for text in args.labels.split(",") if text.strip()]
        if len(labels) != args.shards:
            parser.error(
                f"--labels names {len(labels)} shards but --shards is {args.shards}"
            )
    collection = read_warc(args.input)
    config = ArchiveConfig(
        dictionary=DictionarySpec(
            size=args.dictionary_size, sample_size=args.sample_size
        ),
        encoding=EncodingSpec(scheme=args.scheme),
        partition=PartitionSpec(
            shards=args.shards,
            virtual_nodes=args.virtual_nodes,
            shared_dictionary=not args.per_shard_dictionary,
        ),
        search=SearchSpec(enabled=args.search_index),
    )
    try:
        paths = build_partitioned_archives(collection, config, args.outdir, labels)
    except (ReproError, OSError) as exc:
        print(f"repro partition: {exc}", file=sys.stderr)
        return 1
    for label, path in paths.items():
        documents = len(RlzStore.open(path).document_map)
        print(f"{label}: {documents} documents -> {path}")
    print(
        f"partitioned {len(collection)} documents across {len(paths)} shards "
        f"(epoch 1, {args.virtual_nodes} virtual nodes)"
    )
    return 0


def rebalance_main(argv: Optional[Sequence[str]] = None) -> int:
    """Stream a new shard's arc onto it and bump the fleet's map epoch."""
    parser = argparse.ArgumentParser(
        prog="repro rebalance",
        description=(
            "Live-rebalance a running partitioned fleet: add the shard at "
            "--to (serving an empty joining container from "
            "write_spare_shard) by streaming its arc over from the current "
            "owners and installing the bumped epoch everywhere — recipient "
            "first, donors after, so reads never fail.  Resumable: re-run "
            "after a crash and already-acked documents are skipped."
        ),
    )
    parser.add_argument(
        "--endpoints",
        required=True,
        metavar="RING@HOST:PORT,...",
        help="comma-separated serving labels of every current fleet member",
    )
    parser.add_argument(
        "--to",
        required=True,
        metavar="RING@HOST:PORT",
        help="serving label of the joining shard",
    )
    parser.add_argument(
        "--batch-docs", type=int, default=32, help="documents staged per INGEST batch"
    )
    parser.add_argument(
        "--deadline-ms",
        type=int,
        default=0,
        help="per-batch deadline in milliseconds (0 = none)",
    )
    parser.add_argument(
        "--archive",
        dest="archive_name",
        default="",
        metavar="NAME",
        help="archive name on multi-archive servers",
    )
    args = parser.parse_args(argv)

    from .serve.rebalance import rebalance

    endpoints = [text.strip() for text in args.endpoints.split(",") if text.strip()]
    try:
        report = rebalance(
            endpoints,
            to=args.to,
            archive=args.archive_name,
            batch_docs=args.batch_docs,
            deadline_ms=args.deadline_ms,
        )
    except (ReproError, OSError) as exc:
        print(f"repro rebalance: {exc}", file=sys.stderr)
        return 1
    print(f"rebalance complete: {report.describe()}")
    return 0


def search_main(argv: Optional[Sequence[str]] = None) -> int:
    """BM25 search over a local archive's index or a running fleet."""
    parser = argparse.ArgumentParser(
        prog="repro search",
        description=(
            "Rank documents with BM25 against the posting-list sidecar "
            "written by `repro compress --search-index` / `repro partition "
            "--search-index`.  Without --connect the first positional is a "
            "local container path and ranking runs in-process; with "
            "--connect the query fans out over the SEARCH opcode — a "
            "comma-separated endpoint list queries every shard, exchanges "
            "global corpus statistics, and merges the per-shard top-k into "
            "exactly the single-index ranking."
        ),
    )
    parser.add_argument(
        "target",
        nargs="+",
        metavar="ARCHIVE|QUERY",
        help="without --connect: the local container file followed by the "
        "query terms; with --connect: query terms only",
    )
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="search running repro serve instance(s); a comma-separated "
        "list fans the query out across every shard",
    )
    parser.add_argument(
        "--archive",
        dest="archive_name",
        default="",
        metavar="NAME",
        help="archive name on a multi-archive server (with --connect)",
    )
    parser.add_argument("--top-k", type=int, default=10, help="results to return")
    parser.add_argument(
        "--snippet-chars",
        type=int,
        default=0,
        help="attach a query-biased snippet of this many bytes to every hit "
        "(decoded through the store's windowed partial-decode path)",
    )
    args = parser.parse_intermixed_args(list(argv) if argv is not None else None)
    if args.top_k <= 0:
        parser.error(f"--top-k must be positive, got {args.top_k}")
    if args.snippet_chars < 0:
        parser.error(f"--snippet-chars must be non-negative, got {args.snippet_chars}")

    if args.connect is not None:
        query = " ".join(args.target)
        if not query.strip():
            parser.error("no query given")
        from .serve import ClusterClient, RlzClient

        endpoints = [text.strip() for text in args.connect.split(",") if text.strip()]
        if not endpoints:
            parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
        try:
            if len(endpoints) == 1 and "@" not in endpoints[0]:
                host, _, port_text = endpoints[0].rpartition(":")
                if not host or not port_text.isdigit():
                    parser.error(f"--connect expects HOST:PORT, got {endpoints[0]!r}")
                client = RlzClient(host, int(port_text), archive=args.archive_name)
            else:
                client = ClusterClient(endpoints, archive=args.archive_name)
            try:
                hits = client.search(
                    query, top_k=args.top_k, snippet_chars=args.snippet_chars
                )
            finally:
                client.close()
        except (ReproError, OSError) as exc:
            print(f"repro search: {exc}", file=sys.stderr)
            return 1
        source = args.connect
    else:
        if args.archive_name:
            parser.error("--archive only applies with --connect")
        if len(args.target) < 2:
            parser.error("local search needs an archive path and query terms")
        archive_path, query = args.target[0], " ".join(args.target[1:])

        from .search.serving import PostingsStore, index_sidecar_path
        from .serve.protocol import SearchHit

        sidecar = index_sidecar_path(Path(archive_path))
        try:
            index = PostingsStore.open(sidecar)
        except (ReproError, OSError) as exc:
            print(
                f"repro search: cannot open search index {sidecar}: {exc} "
                f"(build it with `repro compress --search-index`)",
                file=sys.stderr,
            )
            return 1
        scored = index.search(query, top_k=args.top_k)
        hits = []
        if args.snippet_chars > 0 and scored:
            try:
                archive = RlzArchive.open(archive_path)
            except (ReproError, OSError) as exc:
                print(f"repro search: cannot open {archive_path!r}: {exc}", file=sys.stderr)
                return 1
            try:
                for hit in scored:
                    start = max(0, hit.hit_offset - args.snippet_chars // 2)
                    snippet = archive.store.get_window(
                        hit.doc_id, start, args.snippet_chars
                    )
                    hits.append(
                        SearchHit(
                            doc_id=hit.doc_id,
                            score=hit.score,
                            snippet=snippet,
                            snippet_start=start,
                        )
                    )
            finally:
                archive.close()
        else:
            hits = [SearchHit(doc_id=hit.doc_id, score=hit.score) for hit in scored]
        source = archive_path

    if not hits:
        print(f"no results for {query!r} from {source}")
        return 0
    for rank, hit in enumerate(hits, start=1):
        line = f"{rank:3d}. doc {hit.doc_id}  score {hit.score:.4f}"
        if hit.snippet:
            text = hit.snippet.decode("utf-8", "replace").replace("\n", " ")
            line += f"  …{text}…"
        print(line)
    return 0


def _archive_stats(path: str, exercise: int) -> int:
    """``repro stats --archive``: suffix-array acceleration accounting.

    Prints the dictionary suffix array's :meth:`acceleration_stats` and the
    compact jump index's probe-cache counters.  Counters are process-local,
    so ``--exercise N`` decodes and re-factorizes the first N stored
    documents to generate representative probe traffic first.
    """
    from .api import RlzArchive
    from .core import RlzFactorizer

    try:
        archive = RlzArchive.open(path)
    except (ReproError, OSError) as exc:
        print(f"repro stats: {exc}", file=sys.stderr)
        return 1
    try:
        dictionary = archive.store.dictionary
        suffix_array = dictionary.suffix_array
        exercised = 0
        if exercise:
            factorizer = RlzFactorizer(dictionary)
            for doc_id in archive.doc_ids()[:exercise]:
                for _ in factorizer.iter_factors(archive.get(doc_id)):
                    pass
                exercised += 1
        stats = suffix_array.acceleration_stats()
        probe = suffix_array.probe_cache_info()
    finally:
        archive.close()
    print(f"{path} suffix-array acceleration:")
    for key in sorted(stats):
        print(f"  {key}={stats[key]}")
    print(f"{path} jump-index probe cache (process-local counters):")
    for key in sorted(probe):
        print(f"  {key}={probe[key]}")
    if exercise:
        print(f"  (after re-factorizing {exercised} documents)")
    return 0


def stats_main(argv: Optional[Sequence[str]] = None) -> int:
    """Show a running server's load snapshot (HEALTH opcode)."""
    parser = argparse.ArgumentParser(
        prog="repro stats",
        description=(
            "Print a running `repro serve` instance's per-archive load "
            "snapshot — queue depth, service-time EWMA, deadline/busy "
            "rejections, shard-map epoch — via the HEALTH opcode, which is "
            "answered outside the backpressure gate so it works even while "
            "the server is saturated.  --watch N refreshes every N seconds."
        ),
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="address of the running server",
    )
    parser.add_argument(
        "--archive",
        metavar="PATH",
        help="local mode: print the archive dictionary's suffix-array "
        "acceleration stats and jump-index probe-cache counters instead "
        "of a server snapshot",
    )
    parser.add_argument(
        "--exercise",
        type=int,
        default=0,
        metavar="DOCS",
        help="with --archive: re-factorize the first DOCS stored documents "
        "first, so the probe-cache counters reflect real traffic",
    )
    parser.add_argument(
        "--watch",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="refresh every SECONDS until interrupted (0 = print once)",
    )
    args = parser.parse_args(argv)
    if (args.connect is None) == (args.archive is None):
        parser.error("exactly one of --connect or --archive is required")
    if args.exercise < 0:
        parser.error(f"--exercise must be non-negative, got {args.exercise}")

    if args.archive is not None:
        return _archive_stats(args.archive, args.exercise)

    import time as _time

    from .serve import RlzClient

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
    if args.watch < 0:
        parser.error(f"--watch must be non-negative, got {args.watch}")

    client = RlzClient(host, int(port_text))
    try:
        while True:
            try:
                health = client.health()
            except (ReproError, OSError) as exc:
                print(f"repro stats: {exc}", file=sys.stderr)
                return 1
            for name, snapshot in sorted(health.items()):
                label = name or "(default)"
                print(
                    f"{args.connect} {label}: "
                    f"open={int(snapshot.get('open', 0))} "
                    f"epoch={int(snapshot.get('epoch', 0))} "
                    f"active={int(snapshot.get('active', 0))} "
                    f"waiting={int(snapshot.get('waiting', 0))} "
                    f"ewma_ms={snapshot.get('ewma_ms', 0.0):.2f} "
                    f"requests={int(snapshot.get('requests', 0))} "
                    f"busy={int(snapshot.get('busy_rejections', 0))} "
                    f"deadline={int(snapshot.get('deadline_rejections', 0))} "
                    f"wrong_shard={int(snapshot.get('wrong_shard_rejections', 0))} "
                    f"overlay={int(snapshot.get('overlay_documents', 0))}",
                    flush=True,
                )
            if not args.watch:
                return 0
            _time.sleep(args.watch)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def check_main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the project's static-analysis pass (see repro.analysis)."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Run the AST-based project-invariant checkers (protocol "
            "registry, async purity, lock discipline, API-surface drift) "
            "over the repro source tree.  Exits 1 when new findings exist; "
            "findings recorded in --baseline or suppressed with a "
            "'# repro: ignore[check-id]' comment do not fail the run."
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        metavar="PATH",
        help="source tree to analyse (default: src/repro, else the installed package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of text",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file of known findings to mask (JSON)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated check ids to run (default: all)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered checkers and exit",
    )
    args = parser.parse_args(argv)

    from .analysis import default_checkers, run_checks, write_baseline
    from .analysis.runner import default_root

    checkers = default_checkers()
    if args.list:
        width = max(len(c.check_id) for c in checkers)
        for checker in checkers:
            print(f"{checker.check_id:<{width}}  {checker.description}")
        return 0

    if args.select is not None:
        wanted = {part.strip() for part in args.select.split(",") if part.strip()}
        known = {c.check_id for c in checkers}
        unknown = wanted - known
        if unknown:
            parser.error(
                f"unknown check ids: {', '.join(sorted(unknown))} "
                f"(expected some of: {', '.join(sorted(known))})"
            )
        checkers = [c for c in checkers if c.check_id in wanted]
    if args.update_baseline and args.baseline is None:
        parser.error("--update-baseline requires --baseline PATH")

    root = Path(args.root) if args.root is not None else default_root()
    if not root.is_dir():
        print(f"repro check: no such source tree: {root}", file=sys.stderr)
        return 2

    if args.update_baseline:
        report = run_checks(root, checkers=checkers)
        write_baseline(Path(args.baseline), report.findings)
        noun = "finding" if len(report.findings) == 1 else "findings"
        print(f"wrote {len(report.findings)} {noun} to {args.baseline}")
        return 0

    baseline = Path(args.baseline) if args.baseline is not None else None
    report = run_checks(root, checkers=checkers, baseline_path=baseline)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


_SUBCOMMANDS = {
    "corpus": corpus_main,
    "compress": compress_main,
    "bench": bench_main,
    "serve-bench": serve_bench_main,
    "bench-load": bench_load_main,
    "serve": serve_main,
    "get": get_main,
    "verify": verify_main,
    "partition": partition_main,
    "rebalance": rebalance_main,
    "search": search_main,
    "stats": stats_main,
    "check": check_main,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Umbrella entry point: ``repro <corpus|compress|bench> [args...]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        names = " | ".join(sorted(_SUBCOMMANDS))
        usage = f"usage: repro {{{names}}} [options...]"
        if argv:
            print(usage)
            return 0
        print(usage, file=sys.stderr)
        return 2
    command = argv[0]
    handler = _SUBCOMMANDS.get(command)
    if handler is None:
        names = ", ".join(sorted(_SUBCOMMANDS))
        print(f"repro: unknown command {command!r} (expected one of: {names})", file=sys.stderr)
        return 2
    return handler(argv[1:])
