"""Tests for the high-level RlzCompressor / CompressedCollection API."""

import pytest

from repro.core import DictionaryConfig, PAPER_SCHEMES, RlzCompressor
from repro.errors import DecodingError


def test_roundtrip_all_documents(gov_small, gov_compressed):
    for document in gov_small:
        assert gov_compressed.decode_document(document.doc_id) == document.content


def test_sequential_iteration_matches_collection_order(gov_small, gov_compressed):
    decoded = list(gov_compressed.iter_documents())
    assert [doc_id for doc_id, _ in decoded] == gov_small.doc_ids()
    for (doc_id, text), document in zip(decoded, gov_small):
        assert doc_id == document.doc_id
        assert text == document.content


def test_compression_is_effective(gov_small, gov_compressed):
    """RLZ should compress templated web text to a small fraction of its size."""
    assert gov_compressed.compression_ratio(include_dictionary=False) < 40.0
    assert gov_compressed.encoded_size < gov_small.total_size


def test_compression_ratio_includes_dictionary_when_asked(gov_compressed):
    with_dict = gov_compressed.compression_ratio(include_dictionary=True)
    without = gov_compressed.compression_ratio(include_dictionary=False)
    assert with_dict > without


def test_unknown_document_raises(gov_compressed):
    with pytest.raises(DecodingError):
        gov_compressed.decode_document(10_000)


def test_get_blob_returns_raw_bytes(gov_compressed):
    blob = gov_compressed.get_blob(gov_compressed.doc_ids()[0])
    assert isinstance(blob, bytes) and blob


def test_compressor_builds_default_dictionary(gov_small):
    compressor = RlzCompressor(scheme="UV")
    compressed = compressor.compress(gov_small)
    assert compressor.dictionary is not None
    assert compressed.decode_document(gov_small.doc_ids()[0]) == gov_small[0].content


def test_statistics_report(gov_small):
    compressor = RlzCompressor(
        dictionary_config=DictionaryConfig(size=16 * 1024, sample_size=512), scheme="ZZ"
    )
    compressed, report = compressor.compress(gov_small, collect_statistics=True)
    assert report.original_bytes == gov_small.total_size
    assert report.encoded_bytes == compressed.encoded_size
    assert report.average_factor_length > 1.0
    assert 0.0 <= report.unused_dictionary_percent <= 100.0
    assert report.factor_stats.num_documents == len(gov_small)


@pytest.mark.parametrize("scheme", PAPER_SCHEMES)
def test_all_paper_schemes_roundtrip_on_collection(scheme, gov_small, gov_dictionary):
    compressor = RlzCompressor(dictionary=gov_dictionary, scheme=scheme)
    compressed = compressor.compress(gov_small)
    doc = gov_small[3]
    assert compressed.decode_document(doc.doc_id) == doc.content
    assert compressed.scheme_name == scheme


def test_larger_dictionary_compresses_better(gov_small):
    small = RlzCompressor(
        dictionary_config=DictionaryConfig(size=4 * 1024, sample_size=512), scheme="ZV"
    ).compress(gov_small)
    large = RlzCompressor(
        dictionary_config=DictionaryConfig(size=64 * 1024, sample_size=512), scheme="ZV"
    ).compress(gov_small)
    assert large.compression_ratio(include_dictionary=False) < small.compression_ratio(
        include_dictionary=False
    )
