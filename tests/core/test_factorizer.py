"""Tests for the RLZ factorizer (the paper's Encode/Factor algorithms)."""

import pytest

from repro.core import Factor, RlzDictionary, RlzFactorizer, decode_factors
from repro.errors import FactorizationError


@pytest.fixture(scope="module")
def paper_factorizer():
    return RlzFactorizer(RlzDictionary(b"cabbaabba"))


def test_paper_example(paper_factorizer):
    """The worked example of Section 3: bbaancabb -> (bbaa)(n)(cabb)."""
    factorization = paper_factorizer.factorize(b"bbaancabb")
    assert factorization.num_factors == 3
    first, second, third = list(factorization)
    dictionary = b"cabbaabba"
    assert dictionary[first.position : first.position + first.length] == b"bbaa"
    assert second == Factor.literal(ord("n"))
    assert dictionary[third.position : third.position + third.length] == b"cabb"


def test_paper_example_roundtrip(paper_factorizer):
    factorization = paper_factorizer.factorize(b"bbaancabb")
    assert decode_factors(factorization, paper_factorizer.dictionary) == b"bbaancabb"


def test_empty_document(paper_factorizer):
    assert paper_factorizer.factorize(b"").num_factors == 0


def test_document_entirely_absent_from_dictionary(paper_factorizer):
    factorization = paper_factorizer.factorize(b"zzz")
    assert factorization.num_factors == 3
    assert all(factor.is_literal for factor in factorization)


def test_document_equal_to_dictionary(paper_factorizer):
    factorization = paper_factorizer.factorize(b"cabbaabba")
    assert factorization.num_factors == 1
    assert list(factorization)[0] == Factor.copy(0, 9)


def test_greedy_parse_is_leftmost_longest(paper_factorizer):
    """Each factor must be the longest dictionary match at its position."""
    text = b"abbacabba"
    dictionary = paper_factorizer.dictionary.data
    position = 0
    for factor in paper_factorizer.factorize(text):
        if not factor.is_literal:
            matched = dictionary[factor.position : factor.position + factor.length]
            assert matched == text[position : position + factor.length]
            # Maximality: one more character would not occur in the dictionary.
            longer = text[position : position + factor.length + 1]
            if position + factor.length < len(text):
                assert dictionary.find(longer) == -1
        position += factor.output_length
    assert position == len(text)


def test_rejects_non_bytes(paper_factorizer):
    with pytest.raises(FactorizationError):
        paper_factorizer.factorize("a string")  # type: ignore[arg-type]


def test_factorize_many(paper_factorizer):
    documents = [b"bba", b"cab", b"zzz"]
    factorizations = paper_factorizer.factorize_many(documents)
    assert len(factorizations) == 3
    for document, factorization in zip(documents, factorizations):
        assert decode_factors(factorization, paper_factorizer.dictionary) == document


def test_iter_factors_streams(paper_factorizer):
    iterator = paper_factorizer.iter_factors(b"bbaancabb")
    first = next(iterator)
    assert first.length == 4
    assert len(list(iterator)) == 2


def test_realistic_collection_roundtrip(gov_small, gov_dictionary):
    factorizer = RlzFactorizer(gov_dictionary)
    for document in gov_small:
        factorization = factorizer.factorize(document.content)
        assert decode_factors(factorization, gov_dictionary) == document.content


def test_factors_are_long_on_templated_text(gov_small, gov_dictionary):
    """Web boilerplate should produce long factors (the paper reports 30-46)."""
    factorizer = RlzFactorizer(gov_dictionary)
    factorization = factorizer.factorize(gov_small[0].content)
    assert factorization.average_factor_length > 4.0
