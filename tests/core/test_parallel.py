"""Tests for the parallel encode pipeline."""

import pytest

from repro.core import (
    DictionaryConfig,
    PairEncoder,
    ParallelCompressor,
    RlzCompressor,
    RlzDictionary,
    RlzFactorizer,
)
from repro.core.parallel import resolve_workers
from repro.corpus import generate_gov_collection
from repro.errors import FactorizationError


@pytest.fixture(scope="module")
def dictionary():
    return RlzDictionary(b"the quick brown fox jumps over the lazy dog " * 40)


@pytest.fixture(scope="module")
def documents():
    return [
        b"the quick brown fox",
        b"jumps over the lazy dog and the quick cat",
        b"completely unrelated \x00 bytes XYZ",
        b"",
        b"the the the the quick quick",
    ] * 3


def serial_blobs(dictionary, documents, scheme="ZZ"):
    factorizer = RlzFactorizer(dictionary)
    encoder = PairEncoder(scheme)
    return [encoder.encode(factorizer.factorize(document)) for document in documents]


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(0) >= 1
    with pytest.raises(FactorizationError):
        resolve_workers(-2)


def test_serial_pipeline_matches_object_path(dictionary, documents):
    pipeline = ParallelCompressor(dictionary, scheme="ZZ", workers=1)
    assert pipeline.encode_documents(documents) == serial_blobs(dictionary, documents)


def test_pool_pipeline_matches_serial(dictionary, documents):
    pipeline = ParallelCompressor(dictionary, scheme="ZV", workers=2, chunk_size=2)
    blobs = pipeline.encode_documents(documents)
    assert blobs == serial_blobs(dictionary, documents, scheme="ZV")


def test_factorize_documents_streams(dictionary, documents):
    pipeline = ParallelCompressor(dictionary, workers=2, chunk_size=3)
    streams = pipeline.factorize_documents(documents)
    factorizer = RlzFactorizer(dictionary)
    for document, (positions, lengths) in zip(documents, streams):
        expected = factorizer.factorize(document)
        assert positions == expected.positions()
        assert lengths == expected.lengths()


def test_factorize_many_workers(dictionary, documents):
    factorizer = RlzFactorizer(dictionary)
    assert factorizer.factorize_many(documents, workers=2) == factorizer.factorize_many(
        documents
    )


def test_compressor_workers_produce_identical_collection():
    collection = generate_gov_collection(num_documents=8, seed=5)
    config = DictionaryConfig(size=16 * 1024, sample_size=512)
    serial = RlzCompressor(dictionary_config=config, scheme="ZZ").compress(collection)
    parallel = RlzCompressor(
        dictionary_config=config, scheme="ZZ", workers=2
    ).compress(collection)
    assert [d.data for d in serial.documents] == [d.data for d in parallel.documents]
    for document in collection:
        assert parallel.decode_document(document.doc_id) == document.content


def test_empty_document_list(dictionary):
    pipeline = ParallelCompressor(dictionary, workers=2)
    assert pipeline.encode_documents([]) == []


def test_invalid_chunk_size(dictionary):
    with pytest.raises(FactorizationError):
        ParallelCompressor(dictionary, chunk_size=0)
