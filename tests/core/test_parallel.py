"""Tests for the parallel encode pipeline."""

import multiprocessing
import os

import pytest

from repro.core import (
    DictionaryConfig,
    PairEncoder,
    ParallelCompressor,
    RlzCompressor,
    RlzDictionary,
    RlzFactorizer,
)
from repro.core import parallel as parallel_module
from repro.core.parallel import _describe_chunk, resolve_workers
from repro.corpus import generate_gov_collection
from repro.errors import FactorizationError

spawn_available = pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="spawn start method not available",
)


@pytest.fixture(scope="module")
def dictionary():
    return RlzDictionary(b"the quick brown fox jumps over the lazy dog " * 40)


@pytest.fixture(scope="module")
def documents():
    return [
        b"the quick brown fox",
        b"jumps over the lazy dog and the quick cat",
        b"completely unrelated \x00 bytes XYZ",
        b"",
        b"the the the the quick quick",
    ] * 3


def serial_blobs(dictionary, documents, scheme="ZZ"):
    factorizer = RlzFactorizer(dictionary)
    encoder = PairEncoder(scheme)
    return [encoder.encode(factorizer.factorize(document)) for document in documents]


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(0) >= 1
    with pytest.raises(FactorizationError):
        resolve_workers(-2)


def test_resolve_workers_negative_error_states_the_contract():
    """The error must describe the documented contract (None/1 serial,
    0 all cores, positive pool size), not a bare numeric bound."""
    with pytest.raises(FactorizationError) as excinfo:
        resolve_workers(-2)
    message = str(excinfo.value)
    assert "None or 1 (serial)" in message
    assert "0 (use every core)" in message
    assert "got -2" in message


def test_resolve_workers_zero_without_cpu_count(monkeypatch):
    """workers=0 falls back to serial when the core count is unknown."""
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert resolve_workers(0) == 1


def test_serial_pipeline_matches_object_path(dictionary, documents):
    pipeline = ParallelCompressor(dictionary, scheme="ZZ", workers=1)
    assert pipeline.encode_documents(documents) == serial_blobs(dictionary, documents)


def test_pool_pipeline_matches_serial(dictionary, documents):
    pipeline = ParallelCompressor(dictionary, scheme="ZV", workers=2, chunk_size=2)
    blobs = pipeline.encode_documents(documents)
    assert blobs == serial_blobs(dictionary, documents, scheme="ZV")


def test_factorize_documents_streams(dictionary, documents):
    pipeline = ParallelCompressor(dictionary, workers=2, chunk_size=3)
    streams = pipeline.factorize_documents(documents)
    factorizer = RlzFactorizer(dictionary)
    for document, (positions, lengths) in zip(documents, streams):
        expected = factorizer.factorize(document)
        assert positions == expected.positions()
        assert lengths == expected.lengths()


def test_factorize_many_workers(dictionary, documents):
    factorizer = RlzFactorizer(dictionary)
    assert factorizer.factorize_many(documents, workers=2) == factorizer.factorize_many(
        documents
    )


def test_compressor_workers_produce_identical_collection():
    collection = generate_gov_collection(num_documents=8, seed=5)
    config = DictionaryConfig(size=16 * 1024, sample_size=512)
    serial = RlzCompressor(dictionary_config=config, scheme="ZZ").compress(collection)
    parallel = RlzCompressor(
        dictionary_config=config, scheme="ZZ", workers=2
    ).compress(collection)
    assert [d.data for d in serial.documents] == [d.data for d in parallel.documents]
    for document in collection:
        assert parallel.decode_document(document.doc_id) == document.content


def test_parent_state_not_leaked_when_pool_start_fails(dictionary, documents, monkeypatch):
    """A failed pool start must not leave the dictionary referenced by the
    module global (the fork handoff) — regression test for the leak where an
    exception between the handoff and pool construction kept the parent
    dictionary alive for the life of the process."""

    class _BrokenContext:
        def Pool(self, *args, **kwargs):
            raise RuntimeError("pool start failed")

    monkeypatch.setattr(
        parallel_module.multiprocessing, "get_context", lambda method: _BrokenContext()
    )
    pipeline = ParallelCompressor(dictionary, workers=2, start_method="fork")
    with pytest.raises(RuntimeError, match="pool start failed"):
        pipeline.encode_documents(documents)
    assert parallel_module._PARENT_STATE is None


@spawn_available
def test_spawn_shared_memory_matches_serial_and_attaches(dictionary, documents):
    """spawn workers must attach the parent's suffix array through shared
    memory (not rebuild it) and produce byte-identical blobs."""
    pipeline = ParallelCompressor(
        dictionary, scheme="ZZ", workers=2, chunk_size=3, start_method="spawn"
    )
    blobs = pipeline.encode_documents(documents)
    assert blobs == serial_blobs(dictionary, documents)
    assert len(pipeline.last_segment_names) >= 2  # text + suffix array at least
    descriptions = pipeline._run(_describe_chunk, documents)
    for algorithm, segments, _pid in descriptions:
        assert algorithm.startswith("shared:")
        assert segments >= 2


@spawn_available
def test_spawn_shared_memory_segments_released_on_shutdown(dictionary, documents):
    """Without the persistent pool, a run unlinks its segments on the way out."""
    from multiprocessing import shared_memory

    pipeline = ParallelCompressor(
        dictionary, workers=2, start_method="spawn", persistent_segments=False
    )
    pipeline.encode_documents(documents)
    names = pipeline.last_segment_names
    assert names  # the shared path was taken
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


@spawn_available
def test_persistent_segment_pool_reuses_publication(documents):
    """Back-to-back runs against one dictionary attach to the same pooled
    segments (one publish total), and clear() unlinks them."""
    from multiprocessing import shared_memory

    from repro.core.parallel import _SEGMENT_POOL, segment_pool_stats

    dictionary = RlzDictionary(b"persistent segment pool corpus " * 64)
    before = segment_pool_stats()
    pipeline = ParallelCompressor(dictionary, workers=2, start_method="spawn")
    assert pipeline.persistent_segments
    pipeline.encode_documents(documents)
    first_names = pipeline.last_segment_names
    assert first_names
    # The segments survive the run ...
    segment = shared_memory.SharedMemory(name=first_names[0])
    segment.close()
    # ... and the second run reuses them instead of republishing.
    pipeline.encode_documents(documents)
    assert pipeline.last_segment_names == first_names
    stats = segment_pool_stats()
    assert stats["misses"] == before["misses"] + 1
    assert stats["hits"] >= before["hits"] + 1
    _SEGMENT_POOL.clear()
    for name in first_names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_segment_pool_evicts_on_dictionary_collection():
    """A garbage-collected dictionary must drop its pooled segments."""
    import gc

    from multiprocessing import shared_memory

    from repro.core.parallel import _SEGMENT_POOL

    dictionary = RlzDictionary(b"short lived dictionary " * 32)
    shared = _SEGMENT_POOL.acquire(dictionary)
    names = shared.segment_names
    assert _SEGMENT_POOL.acquire(dictionary) is shared  # pooled, not republished
    del dictionary, shared
    gc.collect()
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


@spawn_available
def test_spawn_shared_memory_segments_released_when_pool_fails(
    dictionary, documents, monkeypatch
):
    """Segment cleanup must also run when pool construction raises."""
    from multiprocessing import shared_memory

    real_get_context = multiprocessing.get_context

    class _BrokenContext:
        def Pool(self, *args, **kwargs):
            raise RuntimeError("pool start failed")

    monkeypatch.setattr(
        parallel_module.multiprocessing, "get_context", lambda method: _BrokenContext()
    )
    pipeline = ParallelCompressor(
        dictionary, workers=2, start_method="spawn", persistent_segments=False
    )
    with pytest.raises(RuntimeError, match="pool start failed"):
        pipeline.encode_documents(documents)
    names = pipeline.last_segment_names
    assert names
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
    assert parallel_module._PARENT_STATE is None
    assert real_get_context("spawn") is not None  # sanity: patch was local


def test_shared_publish_midway_failure_releases_created_segments(dictionary, monkeypatch):
    """If segment creation fails partway through publish (e.g. a full
    /dev/shm), the real error must propagate and every already-created
    segment must be closed and unlinked — no kernel objects leak."""
    from multiprocessing import shared_memory

    real_shared_memory = shared_memory.SharedMemory
    created = []
    state = {"creations": 0}

    def flaky(*args, **kwargs):
        if kwargs.get("create"):
            state["creations"] += 1
            if state["creations"] == 3:
                raise OSError("shm exhausted")
        segment = real_shared_memory(*args, **kwargs)
        if kwargs.get("create"):
            created.append(segment.name)
        return segment

    monkeypatch.setattr(shared_memory, "SharedMemory", flaky)
    with pytest.raises(OSError, match="shm exhausted"):
        parallel_module._SharedDictionary.publish(dictionary)
    assert created  # some segments were created before the failure
    for name in created:
        with pytest.raises(FileNotFoundError):
            real_shared_memory(name=name)


@spawn_available
def test_spawn_without_shared_memory_rebuilds_per_worker(dictionary, documents):
    pipeline = ParallelCompressor(
        dictionary, workers=2, start_method="spawn", share_memory=False
    )
    blobs = pipeline.encode_documents(documents)
    assert blobs == serial_blobs(dictionary, documents)
    assert pipeline.last_segment_names == ()
    descriptions = pipeline._run(_describe_chunk, documents)
    for algorithm, segments, _pid in descriptions:
        assert not algorithm.startswith("shared:")
        assert segments == 0


@spawn_available
def test_factorize_many_spawn_shared_memory(dictionary, documents):
    factorizer = RlzFactorizer(dictionary)
    serial = factorizer.factorize_many(documents)
    shared = factorizer.factorize_many(
        documents, workers=2, start_method="spawn", share_memory=True
    )
    assert shared == serial


def test_empty_document_list(dictionary):
    pipeline = ParallelCompressor(dictionary, workers=2)
    assert pipeline.encode_documents([]) == []


def test_invalid_chunk_size(dictionary):
    with pytest.raises(FactorizationError):
        ParallelCompressor(dictionary, chunk_size=0)
