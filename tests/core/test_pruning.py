"""Tests for dictionary pruning / iterative resampling (Section 6 future work)."""

import pytest

from repro.core import (
    DictionaryConfig,
    PairEncoder,
    RlzCompressor,
    RlzDictionary,
    RlzFactorizer,
    build_dictionary,
    iterative_resample,
    prune_dictionary,
)
from repro.core.pruning import _unused_runs
from repro.errors import DictionaryError

import numpy as np


def test_unused_runs_detection():
    covered = np.array([True, False, False, False, True, False, True, False, False], dtype=bool)
    assert _unused_runs(covered, min_run=2) == [(1, 4), (7, 9)]
    assert _unused_runs(covered, min_run=4) == []
    assert _unused_runs(np.zeros(5, dtype=bool), min_run=1) == [(0, 5)]
    assert _unused_runs(np.ones(5, dtype=bool), min_run=1) == []


def test_prune_removes_unused_padding(gov_small):
    """A dictionary padded with bytes that never occur in the collection
    should lose (most of) the padding after one pruning pass."""
    base = build_dictionary(gov_small, DictionaryConfig(size=16 * 1024, sample_size=512))
    padded = RlzDictionary(base.data + bytes([1]) * 4096, config=base.config)
    pruned, report = prune_dictionary(
        padded, gov_small, training_fraction=0.5, min_unused_run=64, refill=False
    )
    assert report.bytes_removed >= 4096
    assert len(pruned) < len(padded)
    assert report.bytes_added == 0
    assert report.unused_percent_before > 0.0


def test_prune_with_refill_keeps_size_constant(gov_small):
    base = build_dictionary(gov_small, DictionaryConfig(size=16 * 1024, sample_size=512))
    padded = RlzDictionary(base.data + bytes([1]) * 2048, config=base.config)
    pruned, report = prune_dictionary(
        padded, gov_small, training_fraction=0.5, min_unused_run=64, refill=True
    )
    assert report.bytes_added == report.bytes_removed
    assert len(pruned) == len(padded)
    assert report.churn == report.bytes_added + report.bytes_removed


def test_prune_noop_when_everything_used():
    """A dictionary that is one big used substring is returned unchanged."""
    text = b"abcdefgh" * 64
    collection_like = type(
        "MiniCollection",
        (),
        {},
    )
    # Simpler: use a real collection whose documents are exactly the dictionary.
    from repro.corpus import Document, DocumentCollection

    collection = DocumentCollection([Document(0, "http://x.gov/a", text)])
    dictionary = RlzDictionary(text)
    pruned, report = prune_dictionary(dictionary, collection, training_fraction=1.0)
    assert report.bytes_removed == 0
    assert pruned.data == dictionary.data


def test_pruned_dictionary_still_roundtrips(gov_small):
    config = DictionaryConfig(size=24 * 1024, sample_size=512)
    dictionary, _ = iterative_resample(gov_small, config, passes=2, training_fraction=0.5)
    factorizer = RlzFactorizer(dictionary)
    encoder = PairEncoder("ZV")
    for document in list(gov_small)[:6]:
        blob = encoder.encode(factorizer.factorize(document.content))
        positions, lengths = encoder.decode_streams(blob)
        from repro.core import decode_pairs

        assert decode_pairs(positions, lengths, dictionary) == document.content


def test_iterative_resample_reports(gov_small):
    config = DictionaryConfig(size=24 * 1024, sample_size=512)
    dictionary, reports = iterative_resample(gov_small, config, passes=3, training_fraction=0.5)
    assert len(reports) >= 1
    assert all(report.dictionary_size > 0 for report in reports)
    assert [report.pass_index for report in reports] == list(range(len(reports)))


def test_iterative_resample_does_not_hurt_compression_much(gov_small):
    config = DictionaryConfig(size=24 * 1024, sample_size=512)
    baseline = RlzCompressor(
        dictionary=build_dictionary(gov_small, config), scheme="ZV"
    ).compress(gov_small)
    resampled_dictionary, _ = iterative_resample(
        gov_small, config, passes=2, training_fraction=0.5
    )
    resampled = RlzCompressor(dictionary=resampled_dictionary, scheme="ZV").compress(gov_small)
    # Resampling must never be catastrophic; it usually helps slightly.
    assert resampled.compression_ratio(include_dictionary=False) <= (
        baseline.compression_ratio(include_dictionary=False) + 3.0
    )


def test_iterative_resample_validates_passes(gov_small):
    with pytest.raises(DictionaryError):
        iterative_resample(gov_small, DictionaryConfig(size=8 * 1024), passes=-1)
