"""Property-based tests of the end-to-end RLZ invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import Factor, Factorization, PairEncoder, RlzDictionary, RlzFactorizer, decode_factors


dictionaries = st.binary(min_size=1, max_size=200)
documents = st.binary(min_size=0, max_size=400)
texty = st.text(alphabet="abcdef <>/=\"", min_size=1, max_size=200).map(lambda s: s.encode())


@given(dictionaries, documents)
@settings(max_examples=60, deadline=None)
def test_factorize_decode_roundtrip(dictionary_bytes, document):
    """decode(factorize(x)) == x for arbitrary binary dictionaries and documents."""
    dictionary = RlzDictionary(dictionary_bytes)
    factorization = RlzFactorizer(dictionary).factorize(document)
    assert decode_factors(factorization, dictionary) == document


@given(texty, texty)
@settings(max_examples=40, deadline=None)
def test_factor_count_never_exceeds_document_length(dictionary_bytes, document):
    dictionary = RlzDictionary(dictionary_bytes)
    factorization = RlzFactorizer(dictionary).factorize(document)
    assert factorization.num_factors <= len(document)
    assert factorization.decoded_length == len(document)


@given(dictionaries, documents)
@settings(max_examples=40, deadline=None)
def test_every_copy_factor_is_a_real_dictionary_substring(dictionary_bytes, document):
    dictionary = RlzDictionary(dictionary_bytes)
    position = 0
    for factor in RlzFactorizer(dictionary).factorize(document):
        if not factor.is_literal:
            assert (
                dictionary_bytes[factor.position : factor.position + factor.length]
                == document[position : position + factor.length]
            )
        position += factor.output_length


@given(
    st.lists(
        st.one_of(
            st.builds(
                Factor.copy,
                position=st.integers(min_value=0, max_value=2**24),
                length=st.integers(min_value=1, max_value=2**16),
            ),
            st.builds(Factor.literal, byte=st.integers(min_value=0, max_value=255)),
        ),
        max_size=80,
    ),
    st.sampled_from(["ZZ", "ZV", "UZ", "UV", "VV", "US"]),
)
@settings(max_examples=60, deadline=None)
def test_pair_encoder_roundtrip_any_factor_stream(factors, scheme):
    encoder = PairEncoder(scheme)
    factorization = Factorization(factors)
    assert encoder.decode(encoder.encode(factorization)) == factorization
