"""Tests for the pair-coding schemes (ZZ, ZV, UZ, UV and extensions)."""

import pytest

from repro.core import Factor, Factorization, PAPER_SCHEMES, PairCodingScheme, PairEncoder
from repro.errors import DecodingError, EncodingError


@pytest.fixture()
def sample_factorization():
    return Factorization(
        [
            Factor.copy(10, 40),
            Factor.copy(500, 3),
            Factor.literal(ord("x")),
            Factor.copy(10, 40),
            Factor.copy(0, 1),
        ]
    )


def test_paper_schemes_constant():
    assert PAPER_SCHEMES == ("ZZ", "ZV", "UZ", "UV")


@pytest.mark.parametrize("scheme", PAPER_SCHEMES)
def test_paper_schemes_roundtrip(scheme, sample_factorization):
    encoder = PairEncoder(scheme)
    blob = encoder.encode(sample_factorization)
    decoded = encoder.decode(blob)
    assert decoded == sample_factorization


@pytest.mark.parametrize("scheme", ["UG", "UD", "US", "UP", "VV", "GV"])
def test_extension_schemes_roundtrip(scheme, sample_factorization):
    encoder = PairEncoder(scheme)
    assert encoder.decode(encoder.encode(sample_factorization)) == sample_factorization


def test_decode_streams_returns_parallel_lists(sample_factorization):
    encoder = PairEncoder("ZV")
    positions, lengths = encoder.decode_streams(encoder.encode(sample_factorization))
    assert positions == sample_factorization.positions()
    assert lengths == sample_factorization.lengths()


def test_scheme_name_normalised():
    assert PairEncoder("zv").scheme_name == "ZV"
    assert PairCodingScheme.from_name("uz").name == "UZ"


def test_invalid_scheme_length_rejected():
    with pytest.raises(EncodingError):
        PairEncoder("ZZZ")


def test_unknown_codec_letter_rejected():
    with pytest.raises(KeyError):
        PairEncoder("Q?")


def test_empty_factorization_roundtrip():
    encoder = PairEncoder("ZZ")
    blob = encoder.encode(Factorization([]))
    assert encoder.decode(blob).num_factors == 0


def test_truncated_blob_raises(sample_factorization):
    encoder = PairEncoder("UV")
    blob = encoder.encode(sample_factorization)
    with pytest.raises(DecodingError):
        encoder.decode(blob[:3])


def test_garbage_header_raises():
    encoder = PairEncoder("UV")
    with pytest.raises(DecodingError):
        encoder.decode(b"\x00\x01")


def test_zz_is_smallest_on_repetitive_streams():
    """The paper's ordering: ZZ <= ZV <= UZ <= UV on skewed per-document streams."""
    factors = [Factor.copy(1000, 30), Factor.copy(2000, 12), Factor.copy(1000, 30)] * 60
    factorization = Factorization(factors)
    sizes = {scheme: len(PairEncoder(scheme).encode(factorization)) for scheme in PAPER_SCHEMES}
    assert sizes["ZZ"] <= sizes["ZV"]
    assert sizes["ZV"] <= sizes["UV"]
    assert sizes["UZ"] <= sizes["UV"]


def test_uv_positions_cost_four_bytes_each():
    factors = [Factor.copy(i, 2) for i in range(100)]
    encoder = PairEncoder("UV")
    blob = encoder.encode(Factorization(factors))
    # header (~3 bytes) + 100 * 4 position bytes + 100 * 1 vbyte length bytes
    assert 500 <= len(blob) <= 510
