"""Tests for dictionary sampling and the RlzDictionary wrapper."""

import pytest

from repro.core import (
    DictionaryConfig,
    RlzDictionary,
    build_dictionary,
    sample_prefix,
    sample_random_documents,
    sample_uniform,
)
from repro.errors import DictionaryError
from repro.suffix import SuffixArray


def test_config_validation():
    with pytest.raises(DictionaryError):
        DictionaryConfig(size=0)
    with pytest.raises(DictionaryError):
        DictionaryConfig(size=10, sample_size=0)
    with pytest.raises(DictionaryError):
        DictionaryConfig(size=10, policy="bogus")
    with pytest.raises(DictionaryError):
        DictionaryConfig(size=10, policy="prefix", prefix_fraction=0.0)


def test_uniform_sampling_size_and_spread():
    text = bytes(range(256)) * 64  # 16 KiB with position-dependent content
    dictionary = sample_uniform(text, dictionary_size=2048, sample_size=256)
    assert len(dictionary) == 2048
    # Samples are evenly spread: both early and late collection content appear.
    assert text[:64] in dictionary
    assert any(byte in dictionary for byte in text[-256:])


def test_uniform_sampling_returns_whole_text_when_large_enough():
    text = b"short collection"
    assert sample_uniform(text, dictionary_size=1000, sample_size=8) == text


def test_uniform_sampling_rejects_empty_collection():
    with pytest.raises(DictionaryError):
        sample_uniform(b"", 16, 4)


def test_prefix_sampling_only_sees_prefix():
    text = b"A" * 1000 + b"B" * 1000
    dictionary = sample_prefix(text, dictionary_size=128, sample_size=16, prefix_fraction=0.5)
    assert b"B" not in dictionary
    with pytest.raises(DictionaryError):
        sample_prefix(text, 128, 16, prefix_fraction=0.0)


def test_random_document_sampling(gov_small):
    data = sample_random_documents(gov_small, dictionary_size=8 * 1024, seed=1)
    assert len(data) == 8 * 1024
    assert sample_random_documents(gov_small, 8 * 1024, seed=1) == data


def test_build_dictionary_policies(gov_small):
    for policy in ("uniform", "prefix", "random_documents"):
        config = DictionaryConfig(size=8 * 1024, sample_size=512, policy=policy, prefix_fraction=0.5)
        dictionary = build_dictionary(gov_small, config)
        assert len(dictionary) == 8 * 1024
        assert dictionary.config is config


def test_dictionary_rejects_empty_data():
    with pytest.raises(DictionaryError):
        RlzDictionary(b"")


def test_dictionary_lazy_suffix_array():
    dictionary = RlzDictionary(b"cabbaabba")
    suffix_array = dictionary.suffix_array
    assert isinstance(suffix_array, SuffixArray)
    assert dictionary.suffix_array is suffix_array  # cached


def test_dictionary_extension_preserves_prefix():
    dictionary = RlzDictionary(b"hello world")
    extended = dictionary.extended(b" and more")
    assert extended.data.startswith(dictionary.data)
    assert len(extended) == len(dictionary) + 9
    assert dictionary.extended(b"") is dictionary


def test_uniform_sampling_dictates_paper_proportions(gov_small):
    """The paper's headline: a dictionary a tiny fraction of the collection."""
    text = gov_small.concatenate()
    dictionary = sample_uniform(text, dictionary_size=len(text) // 100, sample_size=512)
    assert len(dictionary) <= len(text) // 100
