"""Tests for the batch/vectorized decode fast path."""

import pytest

from repro.core import (
    Factor,
    RlzDictionary,
    decode_factors,
    decode_many,
    decode_pairs,
)
from repro.core.decoder import _decode_scalar, _decode_vector
from repro.errors import DecodingError


@pytest.fixture(scope="module")
def dictionary():
    return RlzDictionary(bytes(range(256)) + b"hello world " * 20)


def test_scalar_and_vector_paths_agree(dictionary):
    positions = [0, 65, 256, 10, 300, 255]
    lengths = [5, 0, 12, 0, 1, 0]
    expected = _decode_scalar(positions, lengths, dictionary.data)
    assert _decode_vector(positions, lengths, dictionary) == expected
    assert decode_pairs(positions, lengths, dictionary) == expected


def test_short_factor_streams_take_identical_output(dictionary):
    # Many literal/1-byte factors: the heuristic picks the vectorized path.
    positions = list(range(64)) * 4
    lengths = [0, 1] * 128
    assert decode_pairs(positions, lengths, dictionary) == _decode_scalar(
        positions, lengths, dictionary.data
    )


def test_decode_many_matches_per_document_decode(dictionary):
    docs = [
        ([0, 65], [4, 0]),
        ([], []),
        ([256, 10, 267], [12, 0, 6]),
        ([5], [200]),
    ]
    expected = [decode_pairs(p, l, dictionary) for p, l in docs]
    assert decode_many(docs, dictionary) == expected


def test_decode_many_empty(dictionary):
    assert decode_many([], dictionary) == []
    assert decode_many([([], []), ([], [])], dictionary) == [b"", b""]


def test_decode_many_mismatched_stream_raises(dictionary):
    with pytest.raises(DecodingError):
        decode_many([([1, 2], [3])], dictionary)


def test_validation_happens_before_any_copy(dictionary):
    # A bad factor *after* valid ones must raise on both paths.
    limit = len(dictionary.data)
    with pytest.raises(DecodingError):
        decode_pairs([0, limit], [4, 10], dictionary)
    many = [([0], [4]), ([limit - 1], [2])]
    with pytest.raises(DecodingError):
        decode_many(many, dictionary)


def test_negative_length_rejected(dictionary):
    with pytest.raises(DecodingError):
        decode_pairs([3], [-2], dictionary)
    with pytest.raises(DecodingError):
        decode_factors([Factor(position=3, length=-2)], dictionary)


def test_boundary_factor_is_accepted(dictionary):
    limit = len(dictionary.data)
    # A copy ending exactly at the dictionary boundary is legal...
    assert (
        decode_pairs([limit - 8], [8], dictionary) == dictionary.data[limit - 8 :]
    )
    # ...one byte past it is not.
    with pytest.raises(DecodingError):
        decode_pairs([limit - 8], [9], dictionary)


def test_literal_validation_shared_between_entry_points(dictionary):
    for bad_literal in (-1, 256, 1000):
        with pytest.raises(DecodingError):
            decode_pairs([bad_literal], [0], dictionary)
        with pytest.raises(DecodingError):
            decode_pairs([0] * 40 + [bad_literal], [0] * 41, dictionary)
        with pytest.raises(DecodingError):
            decode_factors([Factor(position=bad_literal, length=0)], dictionary)


def test_decode_factors_accepts_generator(dictionary):
    factors = (Factor(position=index, length=1) for index in range(5))
    assert decode_factors(factors, dictionary) == dictionary.data[:1] * 0 + bytes(
        dictionary.data[index] for index in range(5)
    )
