"""Tests for the Factor and Factorization models."""

import pytest

from repro.core import Factor, Factorization
from repro.errors import FactorizationError


def test_literal_factor():
    factor = Factor.literal(ord("n"))
    assert factor.is_literal
    assert factor.length == 0
    assert factor.position == ord("n")
    assert factor.output_length == 1


def test_copy_factor():
    factor = Factor.copy(position=3, length=4)
    assert not factor.is_literal
    assert factor.output_length == 4


def test_literal_byte_range_checked():
    with pytest.raises(FactorizationError):
        Factor.literal(300)
    with pytest.raises(FactorizationError):
        Factor.literal(-1)


def test_copy_factor_validation():
    with pytest.raises(FactorizationError):
        Factor.copy(position=0, length=0)
    with pytest.raises(FactorizationError):
        Factor.copy(position=-1, length=3)


def test_paper_example_factorization_statistics():
    """x = bbaancabb relative to d = cabbaabba factorizes into three pairs."""
    factors = [Factor.copy(2, 4), Factor.literal(ord("n")), Factor.copy(0, 4)]
    factorization = Factorization(factors)
    assert factorization.num_factors == 3
    assert factorization.num_literals == 1
    assert factorization.decoded_length == 9
    assert factorization.average_factor_length == pytest.approx(3.0)
    assert factorization.positions() == [2, ord("n"), 0]
    assert factorization.lengths() == [4, 0, 4]


def test_factorization_container_protocol():
    factors = [Factor.copy(0, 2), Factor.literal(65)]
    factorization = Factorization(factors)
    assert len(factorization) == 2
    assert list(factorization) == factors
    assert factorization[1].is_literal
    assert factorization == Factorization(factors)
    assert factorization != Factorization(factors[:1])


def test_empty_factorization():
    factorization = Factorization([])
    assert factorization.num_factors == 0
    assert factorization.decoded_length == 0
    assert factorization.average_factor_length == 0.0
