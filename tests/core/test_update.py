"""Tests for dynamic updates (Section 3.6 / Table 10)."""

import pytest

from repro.core import (
    AppendOnlyUpdater,
    DictionaryConfig,
    PairEncoder,
    RlzDictionary,
    build_dictionary,
    decode_pairs,
    simulate_prefix_dictionaries,
)


def test_prefix_dictionary_simulation_shape(gov_small):
    results = simulate_prefix_dictionaries(
        gov_small,
        dictionary_size=16 * 1024,
        sample_size=512,
        prefixes=(1.0, 0.5, 0.1),
        scheme="ZV",
    )
    assert [round(r.prefix_percent) for r in results] == [100, 50, 10]
    # Compression with a full-collection dictionary should not be (much)
    # worse than with a 10% prefix dictionary; allow a small tolerance for
    # sampling noise on the tiny test collection.
    assert results[0].compression_percent <= results[-1].compression_percent + 3.0
    for result in results:
        assert 0.0 < result.compression_percent < 100.0
        assert result.dictionary_size == 16 * 1024


def test_append_only_updater_extends_dictionary(gov_small, wiki_small):
    """Feeding documents unlike the dictionary should trigger an extension."""
    dictionary = build_dictionary(
        gov_small, DictionaryConfig(size=8 * 1024, sample_size=512)
    )
    updater = AppendOnlyUpdater(
        dictionary, scheme="ZV", threshold_percent=5.0, window=3
    )
    blobs = []
    # Wikipedia-like documents share little with a .gov dictionary, so the
    # rolling compression ratio exceeds the (deliberately low) threshold.
    for document in wiki_small:
        blobs.append((document, updater.add_document(document)))
    assert updater.rebuilds >= 1
    assert updater.appended_bytes > 0
    assert len(updater.dictionary) > 8 * 1024
    # Blobs encoded before the extension are still decodable against the
    # extended dictionary (offsets remain valid).
    encoder = PairEncoder("ZV")
    for document, blob in blobs:
        positions, lengths = encoder.decode_streams(blob)
        assert decode_pairs(positions, lengths, updater.dictionary) == document.content


def test_append_only_updater_stays_quiet_on_similar_documents(gov_small):
    dictionary = build_dictionary(
        gov_small, DictionaryConfig(size=32 * 1024, sample_size=512)
    )
    updater = AppendOnlyUpdater(
        dictionary, scheme="ZV", threshold_percent=95.0, window=5
    )
    for document in gov_small:
        updater.add_document(document)
    assert updater.rebuilds == 0
    assert len(updater.dictionary) == len(dictionary)


def test_updater_validates_window():
    with pytest.raises(ValueError):
        AppendOnlyUpdater(RlzDictionary(b"abc"), window=0)
