"""Tests for RLZ decoding (Figure 2)."""

import pytest

from repro.core import Factor, Factorization, RlzDictionary, decode_factors, decode_pairs
from repro.errors import DecodingError


@pytest.fixture(scope="module")
def dictionary():
    return RlzDictionary(b"cabbaabba")


def test_decode_paper_example(dictionary):
    factors = [Factor.copy(2, 4), Factor.literal(ord("n")), Factor.copy(0, 4)]
    assert decode_factors(factors, dictionary) == b"bbaancabb"


def test_decode_pairs_matches_decode_factors(dictionary):
    factors = Factorization([Factor.copy(0, 3), Factor.literal(ord("!")), Factor.copy(4, 5)])
    from_factors = decode_factors(factors, dictionary)
    from_pairs = decode_pairs(factors.positions(), factors.lengths(), dictionary)
    assert from_factors == from_pairs


def test_decode_out_of_range_factor_raises(dictionary):
    with pytest.raises(DecodingError):
        decode_factors([Factor.copy(5, 100)], dictionary)


def test_decode_pairs_mismatched_streams_raise(dictionary):
    with pytest.raises(DecodingError):
        decode_pairs([1, 2], [3], dictionary)


def test_decode_pairs_invalid_literal_byte_raises(dictionary):
    with pytest.raises(DecodingError):
        decode_pairs([700], [0], dictionary)


def test_decode_empty(dictionary):
    assert decode_factors([], dictionary) == b""
    assert decode_pairs([], [], dictionary) == b""
