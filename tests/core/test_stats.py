"""Tests for factor statistics, dictionary usage and length histograms."""

import pytest

from repro.core import (
    DictionaryUsage,
    Factor,
    Factorization,
    FactorStatistics,
    RlzDictionary,
    length_histogram,
)


def make_factorization():
    return Factorization(
        [Factor.copy(0, 5), Factor.copy(10, 50), Factor.literal(ord("q")), Factor.copy(0, 5)]
    )


def test_factor_statistics_accumulation():
    stats = FactorStatistics()
    stats.add(make_factorization())
    stats.add(Factorization([Factor.copy(2, 500)]))
    assert stats.num_documents == 2
    assert stats.num_factors == 5
    assert stats.num_literals == 1
    assert stats.decoded_bytes == 5 + 50 + 1 + 5 + 500
    assert stats.average_factor_length == pytest.approx(561 / 5)
    assert stats.literal_fraction == pytest.approx(1 / 5)
    assert stats.length_counts[5] == 2
    assert stats.length_counts[0] == 1


def test_factor_statistics_from_iterable():
    stats = FactorStatistics.from_factorizations([make_factorization()] * 3)
    assert stats.num_documents == 3


def test_empty_statistics():
    stats = FactorStatistics()
    assert stats.average_factor_length == 0.0
    assert stats.literal_fraction == 0.0


def test_dictionary_usage_tracks_coverage():
    dictionary = RlzDictionary(b"0123456789" * 10)  # 100 bytes
    usage = DictionaryUsage(dictionary)
    usage.add(Factorization([Factor.copy(0, 10), Factor.copy(50, 25)]))
    assert usage.used_bytes == 35
    assert usage.unused_bytes == 65
    assert usage.unused_percentage == pytest.approx(65.0)


def test_dictionary_usage_ignores_literals_and_overlaps():
    dictionary = RlzDictionary(b"x" * 40)
    usage = DictionaryUsage(dictionary)
    usage.add(Factorization([Factor.literal(65), Factor.copy(0, 10), Factor.copy(5, 10)]))
    assert usage.used_bytes == 15


def test_length_histogram_bins():
    factorizations = [
        Factorization(
            [
                Factor.literal(65),
                Factor.copy(0, 3),
                Factor.copy(0, 30),
                Factor.copy(0, 300),
                Factor.copy(0, 3000),
                Factor.copy(0, 30000),
            ]
        )
    ]
    histogram = length_histogram(factorizations)
    assert histogram["literal"] == 1
    assert histogram["[1, 10)"] == 1
    assert histogram["[10, 100)"] == 1
    assert histogram["[100, 1000)"] == 1
    assert histogram["[1000, 10000)"] == 1
    assert histogram[">= 10000"] == 1


def test_length_histogram_is_skewed_on_real_data(gov_small, gov_dictionary):
    """Figure 3's shape: most length values are small."""
    from repro.core import RlzFactorizer

    factorizer = RlzFactorizer(gov_dictionary)
    factorizations = [factorizer.factorize(document.content) for document in gov_small]
    histogram = length_histogram(factorizations)
    small = histogram["[1, 10)"] + histogram["[10, 100)"] + histogram["literal"]
    large = histogram["[1000, 10000)"] + histogram[">= 10000"]
    assert small > large
