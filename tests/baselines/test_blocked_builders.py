"""Tests for the baseline-store builders used by Tables 6, 7 and 9."""

from repro.baselines import (
    PAPER_BLOCK_SIZES_MB,
    build_ascii_baseline,
    build_blocked_baseline,
    build_paper_baselines,
)
from repro.storage import BlockedStore, RawStore


def test_paper_block_sizes_constant():
    assert tuple(PAPER_BLOCK_SIZES_MB) == (0.0, 0.1, 0.2, 0.5, 1.0)


def test_build_ascii_baseline(tmp_path, gov_small):
    path = build_ascii_baseline(gov_small, tmp_path / "ascii.repro")
    with RawStore.open(path) as store:
        assert len(store) == len(gov_small)


def test_build_blocked_baseline(tmp_path, gov_small):
    path = build_blocked_baseline(gov_small, tmp_path / "z.repro", "zlib", 0.1)
    with BlockedStore.open(path) as store:
        assert store.compressor == "zlib"
        assert store.block_size == int(0.1 * 1024 * 1024)
        assert store.get(gov_small.doc_ids()[0]) == gov_small[0].content


def test_build_paper_baselines_grid(tmp_path, gov_small):
    stores = build_paper_baselines(
        gov_small, tmp_path, compressors=("zlib",), block_sizes_mb=(0.0, 0.1)
    )
    assert set(stores) == {"ascii", "zlib-0.0MB", "zlib-0.1MB"}
    for path in stores.values():
        assert path.exists()
