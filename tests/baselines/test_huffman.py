"""Tests for the semi-static word-based Huffman baseline."""

import pytest

from repro.baselines import WordHuffmanCoder, WordHuffmanModel, tokenize
from repro.errors import DecodingError, EncodingError


def test_tokenize_is_lossless():
    text = b"Hello, world!  This is <b>markup</b> 123."
    assert b"".join(tokenize(text)) == text


def test_model_from_frequencies_assigns_shorter_codes_to_frequent_tokens():
    frequencies = {b"the": 1000, b" ": 900, b"zyzzyva": 1}
    model = WordHuffmanModel.from_frequencies(frequencies)
    lengths = dict(zip(model.tokens, model.code_lengths))
    assert lengths[b"the"] <= lengths[b"zyzzyva"]


def test_single_token_model():
    model = WordHuffmanModel.from_frequencies({b"only": 3})
    assert model.vocabulary_size == 1
    assert model.code_lengths == [1]


def test_empty_vocabulary_rejected():
    with pytest.raises(EncodingError):
        WordHuffmanModel.from_frequencies({})


def test_unknown_token_rejected():
    model = WordHuffmanModel.from_frequencies({b"a": 1, b"b": 1})
    with pytest.raises(EncodingError):
        model.code_for(b"missing")


def test_coder_roundtrip_simple_text():
    documents = [b"the cat sat on the mat", b"the mat sat on the cat", b"cat and mat"]
    coder = WordHuffmanCoder.train(documents)
    for document in documents:
        assert coder.decode(coder.encode(document)) == document


def test_coder_roundtrip_web_documents(gov_small):
    documents = [document.content for document in list(gov_small)[:5]]
    coder = WordHuffmanCoder.train(documents)
    for document in documents:
        assert coder.decode(coder.encode(document)) == document


def test_truncated_document_raises():
    coder = WordHuffmanCoder.train([b"alpha beta gamma"])
    with pytest.raises(DecodingError):
        coder.decode(b"\x01")


def test_compression_percent_reasonable(gov_small):
    """Word-based Huffman compresses text but nowhere near RLZ (paper 2.1)."""
    documents = [document.content for document in list(gov_small)[:6]]
    coder = WordHuffmanCoder.train(documents)
    percent = coder.compression_percent(documents)
    assert 20.0 < percent < 95.0


def test_model_cost_counted():
    documents = [b"tiny"]
    coder = WordHuffmanCoder.train(documents)
    with_model = coder.compression_percent(documents, include_model=True)
    without_model = coder.compression_percent(documents, include_model=False)
    assert with_model > without_model
