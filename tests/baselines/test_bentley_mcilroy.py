"""Tests for the Bentley-McIlroy long-repeat preprocessor."""

import pytest

from repro.baselines import BentleyMcIlroy
from repro.errors import DecodingError


def test_roundtrip_no_repeats():
    codec = BentleyMcIlroy(block_size=8)
    data = bytes(range(200))
    assert codec.decode(codec.encode(data)) == data


def test_roundtrip_with_long_repeat():
    codec = BentleyMcIlroy(block_size=16)
    chunk = b"A long boilerplate header that appears many times. " * 4
    data = chunk + b"unique middle part" + chunk + b"tail" + chunk
    encoded = codec.encode(data)
    assert codec.decode(encoded) == data
    assert len(encoded) < len(data)


def test_short_input_passthrough():
    codec = BentleyMcIlroy(block_size=64)
    data = b"too short to fingerprint"
    assert codec.decode(codec.encode(data)) == data


def test_empty_input():
    codec = BentleyMcIlroy()
    assert codec.decode(codec.encode(b"")) == b""


def test_block_size_validation():
    with pytest.raises(ValueError):
        BentleyMcIlroy(block_size=2)


def test_compression_percent_on_templated_documents(gov_small):
    """Same-host pages share kilobytes of chrome, which the scheme removes."""
    codec = BentleyMcIlroy(block_size=32)
    data = b"".join(document.content for document in list(gov_small)[:8])
    assert codec.compression_percent(data) < 80.0


def test_corrupt_stream_raises():
    codec = BentleyMcIlroy()
    with pytest.raises(DecodingError):
        codec.decode(b"\x07broken")
    with pytest.raises(DecodingError):
        codec.decode(b"\x01\x00\x00\x00\x00")


def test_roundtrip_binary_data():
    codec = BentleyMcIlroy(block_size=8)
    data = (bytes(range(256)) + b"\x00" * 64) * 3
    assert codec.decode(codec.encode(data)) == data
