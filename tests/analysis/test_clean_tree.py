"""The shipped tree passes its own static analysis (acceptance gate).

This file is also the regression net for the true positives the pass
surfaced when first run (blocking archive opens in BackgroundServer's boot
coroutine; SharedMemoryCache.close releasing lock-guarded views without
the lock): reintroducing either flips the corresponding test here red.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path

import pytest

from repro.analysis import run_checks
from repro.analysis.checks import default_checkers
from repro.analysis.runner import default_root, default_snapshot_path
from repro.serve import BackgroundServer
from repro.storage import SharedMemoryCache

REPO_SRC = Path(__file__).resolve().parent.parent.parent / "src" / "repro"


def _root() -> Path:
    return REPO_SRC if REPO_SRC.is_dir() else default_root()


def test_tree_is_clean_with_no_baseline():
    report = run_checks(_root(), snapshot_path=default_snapshot_path(_root()))
    assert report.ok, "\n" + report.render_text()


@pytest.mark.parametrize("checker", default_checkers(), ids=lambda c: c.check_id)
def test_tree_is_clean_per_checker(checker):
    report = run_checks(
        _root(), checkers=[checker], snapshot_path=default_snapshot_path(_root())
    )
    assert report.ok, "\n" + report.render_text()


def test_background_server_opens_archives_off_the_event_loop(monkeypatch):
    """Regression: boot() used to call RlzServer.open on the loop thread,
    blocking the brand-new event loop on disk I/O."""
    from repro.serve import server as server_mod

    observed = {}

    class _StubServer:
        host, port = "127.0.0.1", 0

        async def start(self):
            pass

        async def close(self):
            pass

        def stats(self):
            return {}

    def fake_open(*args, **kwargs):
        try:
            asyncio.get_running_loop()
            observed["on_loop"] = True
        except RuntimeError:
            observed["on_loop"] = False
        return _StubServer()

    monkeypatch.setattr(server_mod.RlzServer, "open", staticmethod(fake_open))
    server = BackgroundServer("/nonexistent/archive")
    server.start()
    try:
        assert observed == {"on_loop": False}
    finally:
        server.stop()


def test_shared_memory_cache_close_holds_the_lock():
    """Regression: close() used to drop the lock-guarded view arrays
    without taking self._lock, racing concurrent put()/clear()."""
    cache = SharedMemoryCache(slots=2, slot_bytes=64)
    real_lock = cache._lock
    acquisitions = []

    class _Probe:
        def __enter__(self):
            acquisitions.append(threading.current_thread().name)
            return real_lock.__enter__()

        def __exit__(self, *exc_info):
            return real_lock.__exit__(*exc_info)

    cache._lock = _Probe()
    cache.close()
    assert acquisitions, "close() must hold self._lock while releasing views"
    cache.close()  # idempotent under the lock too
