"""Framework behavior: suppressions, baselines, JSON schema, exit codes."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (
    Finding,
    Project,
    load_baseline,
    parse_suppressions,
    run_checks,
    write_baseline,
)
from repro.analysis.checks import AsyncPurityChecker, default_checkers
from repro.cli import check_main

BLOCKING = """
    import time

    async def handler():
        time.sleep(0.1)
"""

CLEAN = """
    import asyncio

    async def handler():
        await asyncio.sleep(0.1)
"""


def _tree(fake_tree, source=BLOCKING, relpath="serve/server.py"):
    return fake_tree({relpath: textwrap.dedent(source)})


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def test_parse_suppressions_forms():
    source = (
        "x = 1  # repro: ignore\n"
        "y = 2  # repro: ignore[async-purity, lock-discipline]\n"
        "z = 3  # unrelated comment\n"
    )
    parsed = parse_suppressions(source)
    assert parsed == {1: None, 2: {"async-purity", "lock-discipline"}}


def test_suppression_comment_masks_finding(fake_tree):
    source = BLOCKING.replace(
        "time.sleep(0.1)", "time.sleep(0.1)  # repro: ignore[async-purity]"
    )
    report = run_checks(_tree(fake_tree, source), checkers=[AsyncPurityChecker()])
    assert report.ok
    assert report.suppressed == 1


def test_bare_suppression_masks_all_checks(fake_tree):
    source = BLOCKING.replace("time.sleep(0.1)", "time.sleep(0.1)  # repro: ignore")
    report = run_checks(_tree(fake_tree, source), checkers=[AsyncPurityChecker()])
    assert report.ok and report.suppressed == 1


def test_suppression_for_other_check_does_not_mask(fake_tree):
    source = BLOCKING.replace(
        "time.sleep(0.1)", "time.sleep(0.1)  # repro: ignore[lock-discipline]"
    )
    report = run_checks(_tree(fake_tree, source), checkers=[AsyncPurityChecker()])
    assert not report.ok
    assert report.suppressed == 0


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


def test_baseline_masks_old_but_not_new_findings(fake_tree, tmp_path):
    root = _tree(fake_tree)
    baseline = tmp_path / "baseline.json"

    first = run_checks(root, checkers=[AsyncPurityChecker()])
    assert len(first.findings) == 1
    write_baseline(baseline, first.findings)

    # The recorded finding no longer fails the run...
    second = run_checks(root, checkers=[AsyncPurityChecker()], baseline_path=baseline)
    assert second.ok
    assert [f.fingerprint() for f in second.baselined] == [
        first.findings[0].fingerprint()
    ]

    # ...but a new blocking call in the same file still does.
    source = textwrap.dedent(BLOCKING) + "\n\nasync def other():\n    time.sleep(0.2)\n"
    (root / "serve" / "server.py").write_text(source, encoding="utf-8")
    third = run_checks(root, checkers=[AsyncPurityChecker()], baseline_path=baseline)
    assert len(third.findings) == 1
    assert "async def other" in third.findings[0].message
    assert len(third.baselined) == 1


def test_baseline_survives_line_shift(fake_tree, tmp_path):
    root = _tree(fake_tree)
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, run_checks(root, checkers=[AsyncPurityChecker()]).findings)

    # Prepend unrelated code: the finding moves but stays baselined.
    shifted = "import os\n\nUNRELATED = 1\n" + textwrap.dedent(BLOCKING)
    (root / "serve" / "server.py").write_text(shifted, encoding="utf-8")
    report = run_checks(root, checkers=[AsyncPurityChecker()], baseline_path=baseline)
    assert report.ok and len(report.baselined) == 1


def test_baseline_round_trip_and_version_guard(tmp_path):
    path = tmp_path / "baseline.json"
    findings = [Finding("a.py", 3, "async-purity", "blocking call x()")]
    write_baseline(path, findings)
    assert load_baseline(path) == [("async-purity", "a.py", "blocking call x()")]

    path.write_text(json.dumps({"version": 99, "findings": []}), encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(path)


# ---------------------------------------------------------------------------
# Parse failures
# ---------------------------------------------------------------------------


def test_unparsable_file_becomes_finding(fake_tree):
    root = fake_tree({"serve/broken.py": "def nope(:\n"})
    report = run_checks(root, checkers=[AsyncPurityChecker()])
    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.check_id == "parse-error"
    assert finding.path == "serve/broken.py"


def test_project_skips_pycache(fake_tree):
    root = fake_tree(
        {"serve/ok.py": "x = 1\n", "serve/__pycache__/junk.py": "def nope(:\n"}
    )
    project = Project.load(root)
    assert [m.relpath for m in project.modules] == ["serve/ok.py"]
    assert project.parse_failures == []


# ---------------------------------------------------------------------------
# CLI: exit codes, JSON schema, --list, --select, --update-baseline
# ---------------------------------------------------------------------------


def test_cli_exit_zero_on_clean_tree(fake_tree, capsys):
    root = _tree(fake_tree, CLEAN)
    assert check_main([str(root)]) == 0
    assert "0 new findings" in capsys.readouterr().out


def test_cli_exit_one_on_dirty_tree(fake_tree, capsys):
    root = _tree(fake_tree)
    assert check_main([str(root)]) == 1
    out = capsys.readouterr().out
    assert "serve/server.py:5" in out and "[async-purity]" in out


def test_cli_exit_two_on_missing_tree(tmp_path, capsys):
    assert check_main([str(tmp_path / "nope")]) == 2


def test_cli_json_schema_stable(fake_tree, capsys):
    root = _tree(fake_tree)
    assert check_main([str(root), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"version", "root", "checkers", "findings", "counts"}
    assert payload["version"] == 1
    assert payload["checkers"] == [c.check_id for c in default_checkers()]
    (finding,) = payload["findings"]
    assert set(finding) == {"check", "path", "line", "severity", "message"}
    assert finding["check"] == "async-purity"
    assert finding["path"] == "serve/server.py"
    assert finding["line"] == 5
    assert finding["severity"] == "error"
    assert payload["counts"] == {"new": 1, "baselined": 0, "suppressed": 0}


def test_cli_list_enumerates_checkers(capsys):
    assert check_main(["--list"]) == 0
    out = capsys.readouterr().out
    for checker in default_checkers():
        assert checker.check_id in out
        assert checker.description.split()[0] in out


def test_cli_select_runs_subset(fake_tree, capsys):
    root = _tree(fake_tree)
    assert check_main([str(root), "--select", "lock-discipline", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["checkers"] == ["lock-discipline"]


def test_cli_select_rejects_unknown_id(fake_tree):
    root = _tree(fake_tree)
    with pytest.raises(SystemExit) as exc_info:
        check_main([str(root), "--select", "made-up-check"])
    assert exc_info.value.code == 2


def test_cli_update_baseline_then_clean(fake_tree, tmp_path, capsys):
    root = _tree(fake_tree)
    baseline = tmp_path / "baseline.json"
    assert check_main([str(root), "--baseline", str(baseline), "--update-baseline"]) == 0
    assert "wrote 1 finding" in capsys.readouterr().out
    assert check_main([str(root), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "0 new findings (1 baselined)" in out
