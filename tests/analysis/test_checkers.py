"""True-positive and true-negative fixtures for each checker.

Every checker gets at least one fixture that *only* passes because its
detection logic exists (the true positives) and fixtures proving the
escape hatches don't silence real code (the true negatives).
"""

from __future__ import annotations

import textwrap

from repro.analysis import run_checks
from repro.analysis.checks import (
    ApiSurfaceChecker,
    AsyncPurityChecker,
    LockDisciplineChecker,
    ProtocolRegistryChecker,
)


def _run(fake_tree, files, checker, snapshot_path=None):
    root = fake_tree({k: textwrap.dedent(v) for k, v in files.items()})
    report = run_checks(root, checkers=[checker], snapshot_path=snapshot_path)
    return report.findings


# ---------------------------------------------------------------------------
# protocol-registry
# ---------------------------------------------------------------------------

GOOD_ERRORS = """
    class ReproError(Exception):
        pass

    class StorageError(ReproError):
        pass
"""

GOOD_PROTOCOL = """
    import struct
    from typing import Dict, Type
    from repro import errors

    _LEN = struct.Struct("!I")
    _U8 = struct.Struct("!B")
    _OP_REQ = struct.Struct("!BI")

    class Opcode:
        HELLO = 0x01
        R_HELLO = 0x81
        R_ERROR = 0xFF

    ERROR_CODES: Dict[Type[BaseException], int] = {
        errors.ReproError: 1,
        errors.StorageError: 2,
    }

    def encode_frame(opcode, payload=b""):
        return _LEN.pack(1 + len(payload)) + _U8.pack(opcode) + payload

    def encode_frame2(opcode, request_id, payload=b""):
        return _LEN.pack(5 + len(payload)) + _OP_REQ.pack(opcode, request_id) + payload
"""


def test_protocol_clean_fixture_has_no_findings(fake_tree):
    findings = _run(
        fake_tree,
        {"serve/protocol.py": GOOD_PROTOCOL, "errors.py": GOOD_ERRORS},
        ProtocolRegistryChecker(),
    )
    assert findings == []


def test_protocol_duplicate_opcode_detected(fake_tree):
    bad = GOOD_PROTOCOL.replace("R_HELLO = 0x81", "R_HELLO = 0x01")
    findings = _run(
        fake_tree,
        {"serve/protocol.py": bad, "errors.py": GOOD_ERRORS},
        ProtocolRegistryChecker(),
    )
    assert any("reuses value 0x01" in f.message for f in findings)


def test_protocol_duplicate_wire_code_detected(fake_tree):
    bad = GOOD_PROTOCOL.replace("errors.StorageError: 2", "errors.StorageError: 1")
    findings = _run(
        fake_tree,
        {"serve/protocol.py": bad, "errors.py": GOOD_ERRORS},
        ProtocolRegistryChecker(),
    )
    assert any(
        "wire code 1 assigned to both ReproError and StorageError" in f.message
        for f in findings
    )


def test_protocol_unregistered_error_class_detected(fake_tree):
    errors_src = textwrap.dedent(GOOD_ERRORS) + "\n\nclass DecodingError(ReproError):\n    pass\n"
    findings = _run(
        fake_tree,
        {"serve/protocol.py": GOOD_PROTOCOL, "errors.py": errors_src},
        ProtocolRegistryChecker(),
    )
    assert any(
        "DecodingError has no wire code" in f.message and f.path == "errors.py"
        for f in findings
    )


def test_protocol_stale_registry_entry_detected(fake_tree):
    errors_src = GOOD_ERRORS.replace("class StorageError", "class RenamedError")
    findings = _run(
        fake_tree,
        {"serve/protocol.py": GOOD_PROTOCOL, "errors.py": errors_src},
        ProtocolRegistryChecker(),
    )
    messages = [f.message for f in findings]
    assert any("StorageError is not an exception class" in m for m in messages)
    assert any("RenamedError has no wire code" in m for m in messages)


def test_protocol_invalid_struct_format_detected(fake_tree):
    bad = GOOD_PROTOCOL.replace('struct.Struct("!B")', 'struct.Struct("!Z")')
    findings = _run(
        fake_tree,
        {"serve/protocol.py": bad, "errors.py": GOOD_ERRORS},
        ProtocolRegistryChecker(),
    )
    assert any("invalid struct format '!Z'" in f.message for f in findings)


def test_protocol_length_literal_drift_detected(fake_tree):
    # The classic append-a-field bug: the header grows but the literal in
    # the length prefix doesn't.
    bad = GOOD_PROTOCOL.replace("_LEN.pack(5 + len(payload))", "_LEN.pack(4 + len(payload))")
    findings = _run(
        fake_tree,
        {"serve/protocol.py": bad, "errors.py": GOOD_ERRORS},
        ProtocolRegistryChecker(),
    )
    assert any(
        "length literal 4 disagrees with the 5-byte fixed header" in f.message
        for f in findings
    )


# ---------------------------------------------------------------------------
# async-purity
# ---------------------------------------------------------------------------


def test_async_blocking_sleep_detected(fake_tree):
    src = """
        import time

        async def handler():
            time.sleep(0.1)
    """
    findings = _run(fake_tree, {"serve/server.py": src}, AsyncPurityChecker())
    assert [f.check_id for f in findings] == ["async-purity"]
    assert "time.sleep()" in findings[0].message


def test_async_blocking_detected_through_import_alias(fake_tree):
    src = """
        from time import sleep

        async def handler():
            sleep(0.1)
    """
    findings = _run(fake_tree, {"api/front.py": src}, AsyncPurityChecker())
    assert len(findings) == 1 and "time.sleep()" in findings[0].message


def test_async_store_read_and_open_detected(fake_tree):
    src = """
        class Server:
            async def dispatch(self, doc_id):
                archive = RlzArchive.open("/tmp/a")
                return self._store.get(doc_id)
    """
    findings = _run(fake_tree, {"serve/server.py": src}, AsyncPurityChecker())
    labels = sorted(f.message.split(" inside")[0] for f in findings)
    assert labels == [
        "blocking call RlzArchive.open()",
        "blocking call _store.get()",
    ]


def test_async_builtin_open_and_subprocess_detected(fake_tree):
    src = """
        import subprocess

        async def dump(path):
            with open(path, "wb") as fh:
                fh.write(b"x")
            subprocess.run(["sync"])
    """
    findings = _run(fake_tree, {"serve/tool.py": src}, AsyncPurityChecker())
    labels = {f.message.split(" inside")[0] for f in findings}
    assert labels == {"blocking call open()", "blocking call subprocess.run()"}


def test_async_executor_thunks_are_exempt(fake_tree):
    # Blocking names inside a lambda or nested sync def run off-loop: the
    # canonical run_in_executor shapes must stay clean.
    src = """
        import asyncio
        import time

        async def handler(loop, store, doc_id):
            await loop.run_in_executor(None, lambda: time.sleep(0.1))
            def _read():
                with open("/tmp/x", "rb") as fh:
                    return fh.read()
            data = await loop.run_in_executor(None, _read)
            return await loop.run_in_executor(None, store.get, doc_id)
    """
    findings = _run(fake_tree, {"serve/server.py": src}, AsyncPurityChecker())
    assert findings == []


def test_async_sync_functions_and_out_of_scope_files_exempt(fake_tree):
    blocking_async = """
        import time

        async def handler():
            time.sleep(0.1)
    """
    sync_src = """
        import time

        def handler():
            time.sleep(0.1)
    """
    findings = _run(
        fake_tree,
        # Same blocking coroutine outside serve// api/ is out of contract.
        {"bench/loop.py": blocking_async, "serve/sync.py": sync_src},
        AsyncPurityChecker(),
    )
    assert findings == []


def test_async_dict_get_not_confused_with_store_get(fake_tree):
    src = """
        async def handler(self, doc_id):
            waiter = self._inflight.get(doc_id)
            spec = {}.get("x")
            return waiter, spec
    """
    findings = _run(fake_tree, {"serve/server.py": src}, AsyncPurityChecker())
    assert findings == []


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------

LOCKED_CLASS = """
    import threading

    class Cache:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0
            self._reset()

        def _reset(self):
            self._count = 0

        def inc(self):
            with self._lock:
                self._count += 1
                self._bump(1)

        def also_inc(self):
            with self._lock:
                self._bump(1)

        def _bump(self, amount):
            # "caller holds the lock" helper
            self._count += amount
"""


def test_lock_clean_class_with_lock_held_helper(fake_tree):
    findings = _run(fake_tree, {"storage/cache.py": LOCKED_CLASS}, LockDisciplineChecker())
    assert findings == []


def test_lock_unguarded_mutation_detected(fake_tree):
    src = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def inc(self):
                with self._lock:
                    self._count += 1

            def clear(self):
                self._count = 0
    """
    findings = _run(fake_tree, {"storage/cache.py": src}, LockDisciplineChecker())
    assert len(findings) == 1
    assert "Cache.clear mutates self._count without holding self._lock" in findings[0].message


def test_lock_helper_with_one_unlocked_call_site_detected(fake_tree):
    # The lock-held fixpoint must not excuse _bump if any call site lacks
    # the lock.
    src = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def inc(self):
                with self._lock:
                    self._count += 1
                    self._bump(1)

            def also_inc(self):
                self._bump(1)

            def _bump(self, amount):
                self._count += amount
    """
    findings = _run(fake_tree, {"storage/cache.py": src}, LockDisciplineChecker())
    assert len(findings) == 1
    assert "_bump mutates self._count" in findings[0].message


def test_lock_subscript_store_through_attribute_chain_detected(fake_tree):
    src = """
        import threading

        class Ring:
            def __init__(self):
                self._lock = threading.Lock()
                self._slots = bytearray(8)

            def put(self, i, b):
                with self._lock:
                    self._slots[i] = b

            def wipe(self):
                self._slots[0] = 0
    """
    findings = _run(fake_tree, {"storage/cache.py": src}, LockDisciplineChecker())
    assert len(findings) == 1 and "Ring.wipe" in findings[0].message


def test_lock_unguarded_attrs_and_lockless_classes_exempt(fake_tree):
    src = """
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self._guarded = 0
                self._free = 0

            def tick(self):
                with self._lock:
                    self._guarded += 1
                self._free += 1  # never guarded anywhere: not part of the contract

        class NoLock:
            def __init__(self):
                self._n = 0

            def bump(self):
                self._n += 1
    """
    findings = _run(fake_tree, {"storage/cache.py": src}, LockDisciplineChecker())
    assert findings == []


def test_lock_checker_only_scans_target_modules(fake_tree):
    src = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def inc(self):
                with self._lock:
                    self._count += 1

            def clear(self):
                self._count = 0
    """
    findings = _run(fake_tree, {"serve/cache.py": src}, LockDisciplineChecker())
    assert findings == []


# ---------------------------------------------------------------------------
# api-surface
# ---------------------------------------------------------------------------

SNAPSHOT = """
    TOP_LEVEL_EXPORTS = {
        "Alpha",
        "Beta",
    }
"""


def _snapshot_file(tmp_path, source=SNAPSHOT):
    path = tmp_path / "snapshot_test.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def test_api_surface_matching_snapshot_is_clean(fake_tree, tmp_path):
    findings = _run(
        fake_tree,
        {"__init__.py": '__all__ = ["Alpha", "Beta"]\n'},
        ApiSurfaceChecker(),
        snapshot_path=_snapshot_file(tmp_path),
    )
    assert findings == []


def test_api_surface_undocumented_addition_detected(fake_tree, tmp_path):
    findings = _run(
        fake_tree,
        {"__init__.py": '__all__ = ["Alpha", "Beta", "Gamma"]\n'},
        ApiSurfaceChecker(),
        snapshot_path=_snapshot_file(tmp_path),
    )
    assert len(findings) == 1
    assert "'Gamma' is not in the TOP_LEVEL_EXPORTS snapshot" in findings[0].message


def test_api_surface_removal_detected(fake_tree, tmp_path):
    findings = _run(
        fake_tree,
        {"__init__.py": '__all__ = ["Alpha"]\n'},
        ApiSurfaceChecker(),
        snapshot_path=_snapshot_file(tmp_path),
    )
    assert len(findings) == 1
    assert "'Beta' was removed" in findings[0].message


def test_api_surface_duplicate_export_detected(fake_tree, tmp_path):
    findings = _run(
        fake_tree,
        {"__init__.py": '__all__ = ["Alpha", "Alpha", "Beta"]\n'},
        ApiSurfaceChecker(),
        snapshot_path=_snapshot_file(tmp_path),
    )
    assert len(findings) == 1 and "more than once" in findings[0].message


def test_api_surface_augmented_all_is_followed(fake_tree, tmp_path):
    src = '__all__ = ["Alpha"]\n__all__ += ["Beta"]\n'
    findings = _run(
        fake_tree,
        {"__init__.py": src},
        ApiSurfaceChecker(),
        snapshot_path=_snapshot_file(tmp_path),
    )
    assert findings == []


def test_api_surface_non_literal_all_is_flagged(fake_tree, tmp_path):
    src = "_names = [\"Alpha\"]\n__all__ = sorted(_names)\n"
    findings = _run(
        fake_tree,
        {"__init__.py": src},
        ApiSurfaceChecker(),
        snapshot_path=_snapshot_file(tmp_path),
    )
    assert len(findings) == 1 and "not a literal list" in findings[0].message


def test_api_surface_skipped_without_snapshot(fake_tree):
    # Running against an installed package with no test tree: duplicates
    # are still caught, drift is not (nothing to diff against).
    from repro.analysis import Project

    root = fake_tree({"__init__.py": '__all__ = ["Alpha", "Zeta", "Zeta"]\n'})
    project = Project.load(root, snapshot_path=None)
    findings = list(ApiSurfaceChecker().run(project))
    assert len(findings) == 1 and "more than once" in findings[0].message
