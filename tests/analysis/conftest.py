"""Fixture helpers for the static-analysis battery.

Checker tests run against miniature fake source trees written into
``tmp_path`` with the same relative layout the real checkers key on
(``serve/protocol.py``, ``errors.py``, ``storage/cache.py``, package
``__init__`` files), so each fixture exercises exactly one invariant.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import pytest


@pytest.fixture
def fake_tree(tmp_path):
    """Write ``{relpath: source}`` dicts as a fake repro package tree."""

    def build(files: Dict[str, str]) -> Path:
        root = tmp_path / "fakepkg"
        for relpath, source in files.items():
            path = root / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
        return root

    return build
