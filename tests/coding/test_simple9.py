"""Tests for Simple-9 word-aligned coding."""

import pytest

from repro.coding import Simple9Codec
from repro.errors import DecodingError


def test_roundtrip_small_values():
    codec = Simple9Codec()
    values = [1, 0, 1, 1, 0] * 30
    assert codec.decode_all(codec.encode(values)) == values


def test_roundtrip_mixed_magnitudes():
    codec = Simple9Codec()
    values = [1, 5, 200, 3, 2**20, 7, 9, 2**27, 0, 1]
    assert codec.decode_all(codec.encode(values)) == values


def test_dense_packing_of_unit_values():
    """28 one-bit values fit into a single 32-bit word (plus the count header)."""
    codec = Simple9Codec()
    encoded = codec.encode([1] * 28)
    assert len(encoded) == 4 + 4


def test_rejects_values_above_28_bits():
    with pytest.raises(ValueError):
        Simple9Codec().encode([2**28])


def test_rejects_negative():
    with pytest.raises(ValueError):
        Simple9Codec().encode([-1])


def test_decode_count_interface():
    codec = Simple9Codec()
    values = [3, 1, 4, 1, 5, 9, 2, 6]
    encoded = codec.encode(values)
    assert codec.decode(encoded, len(values)) == values
    with pytest.raises(DecodingError):
        codec.decode(encoded, len(values) + 1)


def test_malformed_stream_raises():
    with pytest.raises(DecodingError):
        Simple9Codec().decode_all(b"\x01\x02\x03")


def test_empty_sequence():
    codec = Simple9Codec()
    assert codec.decode_all(codec.encode([])) == []
