"""Tests for the zlib integer codec (the paper's Z scheme)."""

import pytest

from repro.coding import U32Codec, VByteCodec, ZlibCodec
from repro.errors import DecodingError


def test_roundtrip_default_inner():
    codec = ZlibCodec()
    values = [7, 7, 7, 123456, 0, 7]
    assert codec.decode(codec.encode(values), len(values)) == values


def test_roundtrip_vbyte_inner():
    codec = ZlibCodec(inner=VByteCodec())
    values = list(range(200)) * 3
    assert codec.decode_all(codec.encode(values)) == values


def test_repetitive_streams_compress_well():
    """The paper's observation: per-document position streams are skewed."""
    codec = ZlibCodec(inner=U32Codec())
    repetitive = [42, 99, 42, 99] * 500
    flat = list(range(2000))
    assert len(codec.encode(repetitive)) < len(codec.encode(flat)) / 4


def test_corrupt_stream_raises():
    codec = ZlibCodec()
    with pytest.raises(DecodingError):
        codec.decode(b"not zlib data", 1)


def test_invalid_level_rejected():
    with pytest.raises(ValueError):
        ZlibCodec(level=42)


def test_empty_sequence():
    codec = ZlibCodec()
    assert codec.decode(codec.encode([]), 0) == []
