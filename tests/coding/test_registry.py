"""Tests for the codec registry."""

import pytest

from repro.coding import IntegerCodec, available_codecs, make_codec, register_codec


def test_paper_codecs_are_registered():
    for name in ("U", "V", "Z"):
        assert name in available_codecs()


def test_extension_codecs_are_registered():
    for name in ("G", "D", "S", "P"):
        assert name in available_codecs()


def test_make_codec_is_case_insensitive():
    assert make_codec("v").name == make_codec("V").name


def test_make_codec_unknown_raises():
    with pytest.raises(KeyError):
        make_codec("does-not-exist")


def test_registered_codecs_roundtrip():
    values = [0, 1, 500, 12345]
    for name in available_codecs():
        codec = make_codec(name)
        assert codec.decode(codec.encode(values), len(values)) == values, name


def test_register_codec_rejects_duplicates():
    with pytest.raises(ValueError):
        register_codec("V", lambda: make_codec("V"))


def test_register_custom_codec():
    class Identity(IntegerCodec):
        name = "identity-test"

        def encode(self, values):
            return b",".join(str(v).encode() for v in values)

        def decode(self, data, count):
            return [int(v) for v in data.split(b",") if v][:count]

    # Use a name unlikely to collide and verify dispatch through the registry.
    register_codec("XTEST", Identity)
    codec = make_codec("xtest")
    assert codec.decode(codec.encode([1, 2, 3]), 3) == [1, 2, 3]
