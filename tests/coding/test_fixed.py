"""Tests for fixed-width integer coding (the paper's U scheme)."""

import pytest

from repro.coding import FixedWidthCodec, U32Codec, U64Codec
from repro.errors import DecodingError


def test_u32_roundtrip():
    codec = U32Codec()
    values = [0, 1, 2**16, 2**32 - 1]
    assert codec.decode(codec.encode(values), len(values)) == values


def test_u32_uses_four_bytes_per_value():
    assert len(U32Codec().encode([1, 2, 3])) == 12


def test_u32_rejects_overflow():
    with pytest.raises(ValueError):
        U32Codec().encode([2**32])


def test_u64_accepts_large_values():
    codec = U64Codec()
    values = [2**40, 2**63]
    assert codec.decode(codec.encode(values), 2) == values


def test_rejects_negative():
    with pytest.raises(ValueError):
        U32Codec().encode([-5])


def test_decode_all_checks_alignment():
    codec = U32Codec()
    with pytest.raises(DecodingError):
        codec.decode_all(b"\x01\x02\x03")


def test_decode_too_short_raises():
    codec = U32Codec()
    with pytest.raises(DecodingError):
        codec.decode(b"\x01\x02\x03\x04", 2)


def test_invalid_width_rejected():
    with pytest.raises(ValueError):
        FixedWidthCodec(3)


@pytest.mark.parametrize("width", [1, 2, 4, 8])
def test_all_widths_roundtrip(width):
    codec = FixedWidthCodec(width)
    maximum = (1 << (8 * width)) - 1
    values = [0, 1, maximum // 2, maximum]
    assert codec.decode_all(codec.encode(values)) == values
