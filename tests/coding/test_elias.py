"""Tests for Elias gamma/delta codes and the bit I/O helpers."""

import pytest

from repro.coding import BitReader, BitWriter, EliasDeltaCodec, EliasGammaCodec
from repro.errors import DecodingError


def test_bitwriter_reader_roundtrip():
    writer = BitWriter()
    writer.write_bits(0b1011, 4)
    writer.write_unary(3)
    writer.write_bit(1)
    data = writer.getvalue()
    reader = BitReader(data)
    assert reader.read_bits(4) == 0b1011
    assert reader.read_unary() == 3
    assert reader.read_bit() == 1


def test_bitreader_exhaustion_raises():
    reader = BitReader(b"")
    with pytest.raises(DecodingError):
        reader.read_bit()


def test_gamma_roundtrip():
    codec = EliasGammaCodec()
    values = [0, 1, 2, 3, 7, 8, 100, 1000, 2**20]
    assert codec.decode(codec.encode(values), len(values)) == values


def test_delta_roundtrip():
    codec = EliasDeltaCodec()
    values = [0, 1, 2, 3, 7, 8, 100, 1000, 2**20, 2**30]
    assert codec.decode(codec.encode(values), len(values)) == values


def test_gamma_small_values_are_compact():
    codec = EliasGammaCodec()
    # value 0 encodes as a single '1' bit, so 8 zeros fit in one byte.
    assert len(codec.encode([0] * 8)) == 1


def test_delta_beats_gamma_for_large_values():
    gamma = EliasGammaCodec()
    delta = EliasDeltaCodec()
    values = [2**20] * 64
    assert len(delta.encode(values)) < len(gamma.encode(values))


def test_negative_rejected():
    with pytest.raises(ValueError):
        EliasGammaCodec().encode([-1])
    with pytest.raises(ValueError):
        EliasDeltaCodec().encode([-1])
