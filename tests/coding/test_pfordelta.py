"""Tests for PForDelta coding."""

import pytest

from repro.coding import PForDeltaCodec
from repro.coding.pfordelta import BLOCK_SIZE
from repro.errors import DecodingError


def test_roundtrip_uniform_values():
    codec = PForDeltaCodec()
    values = [7] * 300
    assert codec.decode_all(codec.encode(values)) == values


def test_roundtrip_with_exceptions():
    """A few huge values among small ones exercise the exception patch path."""
    codec = PForDeltaCodec()
    values = [3] * 200
    values[10] = 2**30
    values[150] = 2**40
    assert codec.decode_all(codec.encode(values)) == values


def test_roundtrip_multiple_blocks():
    codec = PForDeltaCodec()
    values = list(range(BLOCK_SIZE * 3 + 17))
    assert codec.decode_all(codec.encode(values)) == values


def test_small_values_pack_tightly():
    codec = PForDeltaCodec()
    values = [1] * BLOCK_SIZE
    encoded = codec.encode(values)
    # 128 one-bit values = 16 bytes of payload plus the 9-byte header.
    assert len(encoded) < BLOCK_SIZE


def test_rejects_negative():
    with pytest.raises(ValueError):
        PForDeltaCodec().encode([-3])


def test_decode_count_interface():
    codec = PForDeltaCodec()
    values = [9, 8, 7, 6]
    encoded = codec.encode(values)
    assert codec.decode(encoded, 4) == values
    with pytest.raises(DecodingError):
        codec.decode(encoded, 5)


def test_truncated_stream_raises():
    codec = PForDeltaCodec()
    encoded = codec.encode(list(range(50)))
    with pytest.raises(DecodingError):
        codec.decode_all(encoded[: len(encoded) // 2])


def test_empty_sequence():
    codec = PForDeltaCodec()
    assert codec.decode_all(codec.encode([])) == []
