"""Property-based round-trip tests for every integer codec."""

from hypothesis import given, settings, strategies as st

from repro.coding import (
    EliasDeltaCodec,
    EliasGammaCodec,
    PForDeltaCodec,
    Simple9Codec,
    U32Codec,
    U64Codec,
    VByteCodec,
    ZlibCodec,
)

u32_values = st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=200)
u28_values = st.lists(st.integers(min_value=0, max_value=2**28 - 1), max_size=200)
big_values = st.lists(st.integers(min_value=0, max_value=2**60), max_size=150)


@given(u32_values)
@settings(max_examples=50, deadline=None)
def test_vbyte_roundtrip(values):
    codec = VByteCodec()
    assert codec.decode(codec.encode(values), len(values)) == values


@given(u32_values)
@settings(max_examples=50, deadline=None)
def test_u32_roundtrip(values):
    codec = U32Codec()
    assert codec.decode(codec.encode(values), len(values)) == values


@given(big_values)
@settings(max_examples=40, deadline=None)
def test_u64_roundtrip(values):
    codec = U64Codec()
    assert codec.decode(codec.encode(values), len(values)) == values


@given(u32_values)
@settings(max_examples=40, deadline=None)
def test_zlib_roundtrip(values):
    codec = ZlibCodec()
    assert codec.decode(codec.encode(values), len(values)) == values


@given(big_values)
@settings(max_examples=30, deadline=None)
def test_gamma_roundtrip(values):
    codec = EliasGammaCodec()
    assert codec.decode(codec.encode(values), len(values)) == values


@given(big_values)
@settings(max_examples=30, deadline=None)
def test_delta_roundtrip(values):
    codec = EliasDeltaCodec()
    assert codec.decode(codec.encode(values), len(values)) == values


@given(u28_values)
@settings(max_examples=40, deadline=None)
def test_simple9_roundtrip(values):
    codec = Simple9Codec()
    assert codec.decode_all(codec.encode(values)) == values


@given(big_values)
@settings(max_examples=40, deadline=None)
def test_pfordelta_roundtrip(values):
    codec = PForDeltaCodec()
    assert codec.decode_all(codec.encode(values)) == values
