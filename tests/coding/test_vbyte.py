"""Tests for variable-byte coding."""

import pytest

from repro.coding import VByteCodec, decode_vbyte, encode_vbyte
from repro.errors import DecodingError


def test_small_values_use_one_byte():
    assert len(encode_vbyte([0])) == 1
    assert len(encode_vbyte([127])) == 1
    assert len(encode_vbyte([128])) == 2


def test_roundtrip_simple():
    values = [0, 1, 127, 128, 300, 16384, 2**31, 2**40]
    assert decode_vbyte(encode_vbyte(values)) == values


def test_empty_sequence():
    assert encode_vbyte([]) == b""
    assert decode_vbyte(b"") == []


def test_negative_value_rejected():
    with pytest.raises(ValueError):
        encode_vbyte([-1])


def test_truncated_stream_raises():
    data = encode_vbyte([300])
    with pytest.raises(DecodingError):
        decode_vbyte(data[:-1])


def test_decode_with_count_checks_exactness():
    data = encode_vbyte([1, 2, 3])
    assert decode_vbyte(data, count=3) == [1, 2, 3]
    with pytest.raises(DecodingError):
        decode_vbyte(data, count=5)


def test_decode_with_count_stops_early():
    data = encode_vbyte([1, 2, 3])
    assert decode_vbyte(data, count=2) == [1, 2]


def test_codec_interface_roundtrip():
    codec = VByteCodec()
    values = [5, 500, 50000]
    encoded = codec.encode(values)
    assert codec.decode(encoded, 3) == values
    assert codec.decode_all(encoded) == values
    assert codec.name == "v"


def test_codec_rejects_negative():
    with pytest.raises(ValueError):
        VByteCodec().encode([1, -2])


def test_typical_factor_lengths_are_single_bytes():
    """The paper's rationale: most factor lengths are < 128 and cost 1 byte."""
    lengths = list(range(1, 101))
    assert len(encode_vbyte(lengths)) == 100
