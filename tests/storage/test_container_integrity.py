"""Corruption-safety tests for the RPRC2 container format.

The acceptance bar: a single flipped byte anywhere in a container is
*detected* (typed error, never silently wrong bytes), and a build killed
mid-write leaves no openable partial archive.
"""

from __future__ import annotations

import os

import pytest

from repro.core import DictionaryConfig, RlzCompressor
from repro.errors import CorruptArchiveError, StorageError
from repro.storage import (
    BlockedStore,
    BlockedStoreConfig,
    DocumentEntry,
    DocumentMap,
    RawStore,
    RlzStore,
    read_container_header,
    verify_container,
)
from repro.storage import container as container_module


@pytest.fixture(scope="module")
def small_collection(gov_small):
    return gov_small


@pytest.fixture()
def rlz_path(tmp_path, small_collection):
    compressor = RlzCompressor(
        dictionary_config=DictionaryConfig(size=16 * 1024, sample_size=512), scheme="ZZ"
    )
    path = tmp_path / "a.rlz"
    RlzStore.write(compressor.compress(small_collection), path)
    return path


def test_verify_fresh_containers_report_ok(tmp_path, small_collection, rlz_path):
    blocked = tmp_path / "a.blocked"
    BlockedStore.build(
        small_collection, blocked, BlockedStoreConfig("zlib", block_size=16 * 1024)
    )
    raw = tmp_path / "a.raw"
    RawStore.build(small_collection, raw)
    for path in (rlz_path, blocked, raw):
        report = verify_container(path)
        assert report["verifiable"] is True
        assert report["format"] == "RPRC2"
        assert report["extents_checked"] > 0
        assert report["bytes_checked"] > 0
        assert report["documents"] == len(small_collection)


def test_single_flipped_byte_anywhere_is_detected(rlz_path):
    """Sweep flip positions across the whole file: every one must raise."""
    original = rlz_path.read_bytes()
    size = len(original)
    header = read_container_header(rlz_path)
    # A prime stride samples every region (magic, store type, lengths,
    # metadata, map, dictionary, checksum table, payload) without taking
    # minutes; the section boundaries are hit explicitly.
    offsets = set(range(0, size, 211))
    offsets.update((0, 5, 7, size - 1, header.payload_offset, header.payload_offset - 5))
    for offset in sorted(offsets):
        mutated = bytearray(original)
        mutated[offset] ^= 0xFF
        rlz_path.write_bytes(bytes(mutated))
        with pytest.raises((CorruptArchiveError, StorageError)):
            verify_container(rlz_path)
    rlz_path.write_bytes(original)
    assert verify_container(rlz_path)["verifiable"] is True


@pytest.mark.parametrize("store_kind", ["rlz", "blocked", "raw"])
def test_payload_flip_raises_corrupt_archive_on_read(
    tmp_path, small_collection, store_kind
):
    """The serving read path itself (not just offline verify) checks CRCs."""
    path = tmp_path / f"a.{store_kind}"
    if store_kind == "rlz":
        compressor = RlzCompressor(
            dictionary_config=DictionaryConfig(size=16 * 1024, sample_size=512),
            scheme="ZZ",
        )
        RlzStore.write(compressor.compress(small_collection), path)
        opener = RlzStore.open
    elif store_kind == "blocked":
        BlockedStore.build(
            small_collection, path, BlockedStoreConfig("zlib", block_size=16 * 1024)
        )
        opener = BlockedStore.open
    else:
        RawStore.build(small_collection, path)
        opener = RawStore.open
    header = read_container_header(path)
    data = bytearray(path.read_bytes())
    data[header.payload_offset + 3] ^= 0x40
    path.write_bytes(bytes(data))
    with opener(path) as store:
        corrupt = 0
        for doc_id in store.doc_ids():
            try:
                store.get(doc_id)
            except CorruptArchiveError:
                corrupt += 1
        assert corrupt >= 1  # the flipped extent is never served silently


def test_interrupted_build_leaves_no_partial_archive(tmp_path, monkeypatch):
    """A crash during the container write must not leave an openable file."""
    document_map = DocumentMap()
    document_map.add(DocumentEntry(doc_id=1, offset=0, length=4))
    target = tmp_path / "killed.repro"

    def dying_fsync(fd):
        raise OSError("simulated power loss")

    monkeypatch.setattr(container_module.os, "fsync", dying_fsync)
    with pytest.raises(OSError):
        container_module.write_container(
            target, "raw", {"original_size": 4}, document_map, b"", b"abcd"
        )
    assert not target.exists()
    assert list(tmp_path.iterdir()) == []  # no stray temp file either


def test_interrupted_rebuild_preserves_the_old_archive(tmp_path, monkeypatch):
    document_map = DocumentMap()
    document_map.add(DocumentEntry(doc_id=1, offset=0, length=4))
    target = tmp_path / "stable.repro"
    container_module.write_container(
        target, "raw", {"original_size": 4}, document_map, b"", b"abcd"
    )
    good = target.read_bytes()

    real_fsync = os.fsync

    def dying_fsync(fd):
        raise OSError("simulated power loss")

    monkeypatch.setattr(container_module.os, "fsync", dying_fsync)
    with pytest.raises(OSError):
        container_module.write_container(
            target, "raw", {"original_size": 8}, document_map, b"", b"abcdefgh"
        )
    monkeypatch.setattr(container_module.os, "fsync", real_fsync)
    assert target.read_bytes() == good
    assert verify_container(target)["verifiable"] is True


def test_legacy_rprc1_container_still_opens(tmp_path, small_collection):
    """Old archives (no checksum section) read fine but report unverifiable."""
    import struct as structlib

    document_map = DocumentMap()
    payload = bytearray()
    for document in small_collection:
        document_map.add(
            DocumentEntry(
                doc_id=document.doc_id, offset=len(payload), length=document.size
            )
        )
        payload += document.content
    metadata = b'{"collection": "legacy", "original_size": %d}' % small_collection.total_size
    map_bytes = document_map.to_bytes()
    path = tmp_path / "legacy.repro"
    with path.open("wb") as handle:
        handle.write(b"RPRC1\n")
        handle.write(structlib.pack("<H", 3) + b"raw")
        handle.write(structlib.pack("<Q", len(metadata)) + metadata)
        handle.write(structlib.pack("<Q", len(map_bytes)) + map_bytes)
        handle.write(structlib.pack("<Q", 0))
        handle.write(bytes(payload))

    with RawStore.open(path) as store:
        first = small_collection[0]
        assert store.get(first.doc_id) == first.content
    report = verify_container(path)
    assert report["verifiable"] is False
    assert report["format"] == "RPRC1"
    assert report["extents_checked"] == 0
