"""Conformance suite for the pluggable decode-cache tiers.

One shared battery runs against every :class:`CacheTier` implementation
(NullCache, LruCache, SharedMemoryCache), then tier-specific sections cover
the LRU semantics and the shared-memory ring (cross-process visibility,
unlink-on-close, slot-size rejection).
"""

from __future__ import annotations

import multiprocessing
import uuid

import pytest

from repro.errors import StorageError
from repro.storage import CacheTier, LruCache, NullCache, SharedMemoryCache

REQUIRED_INFO_KEYS = {"hits", "misses", "size", "capacity"}


def _make_tier(kind: str):
    if kind == "null":
        return NullCache()
    if kind == "lru":
        return LruCache(4)
    return SharedMemoryCache(slots=4, slot_bytes=1024)


@pytest.fixture(params=["null", "lru", "shared"])
def tier_kind(request):
    tier = _make_tier(request.param)
    yield request.param, tier
    tier.close()


# ----------------------------------------------------------------------
# Shared conformance battery
# ----------------------------------------------------------------------
def test_implements_protocol(tier_kind):
    _, tier = tier_kind
    assert isinstance(tier, CacheTier)


def test_empty_lookup_misses(tier_kind):
    _, tier = tier_kind
    assert tier.get(1) is None
    assert tier.peek(1) is False


def test_put_then_get_roundtrips_bytes(tier_kind):
    kind, tier = tier_kind
    tier.put(7, b"payload-7")
    if kind == "null":
        assert tier.get(7) is None
        assert tier.peek(7) is False
    else:
        assert tier.peek(7) is True
        assert tier.get(7) == b"payload-7"


def test_peek_moves_no_counters(tier_kind):
    _, tier = tier_kind
    tier.put(3, b"x")
    before = tier.cache_info()
    tier.peek(3)
    tier.peek(99)
    after = tier.cache_info()
    assert after["hits"] == before["hits"]
    assert after["misses"] == before["misses"]


def test_cache_info_required_keys(tier_kind):
    _, tier = tier_kind
    info = tier.cache_info()
    assert REQUIRED_INFO_KEYS <= set(info)
    assert all(isinstance(value, int) for value in info.values())


def test_counters_track_get(tier_kind):
    kind, tier = tier_kind
    tier.put(1, b"one")
    tier.get(1)
    tier.get(2)
    info = tier.cache_info()
    if kind == "null":
        assert info["hits"] == 0 and info["misses"] == 0
    else:
        assert info["hits"] == 1
        assert info["misses"] == 1


def test_clear_empties(tier_kind):
    kind, tier = tier_kind
    for doc_id in range(3):
        tier.put(doc_id, b"doc")
    tier.clear()
    assert tier.cache_info()["size"] == 0
    assert tier.get(0) is None


def test_close_is_idempotent(tier_kind):
    _, tier = tier_kind
    tier.close()
    tier.close()  # second close must not raise


# ----------------------------------------------------------------------
# LruCache specifics
# ----------------------------------------------------------------------
def test_lru_rejects_non_positive_capacity():
    with pytest.raises(StorageError):
        LruCache(0)
    with pytest.raises(StorageError):
        LruCache(-1)


def test_lru_evicts_least_recent():
    cache = LruCache(2)
    cache.put(1, b"a")
    cache.put(2, b"b")
    assert cache.get(1) == b"a"  # 1 becomes most recent
    cache.put(3, b"c")  # evicts 2
    assert cache.peek(2) is False
    assert cache.get(1) == b"a"
    assert cache.get(3) == b"c"
    assert [doc_id for doc_id, _ in cache.items()] == [1, 3]


# ----------------------------------------------------------------------
# SharedMemoryCache specifics
# ----------------------------------------------------------------------
def test_shared_rejects_bad_geometry():
    with pytest.raises(StorageError):
        SharedMemoryCache(slots=0)
    with pytest.raises(StorageError):
        SharedMemoryCache(slots=4, slot_bytes=0)


def test_shared_rejects_oversized_documents():
    with SharedMemoryCache(slots=2, slot_bytes=8) as cache:
        cache.put(1, b"x" * 9)
        assert cache.peek(1) is False
        assert cache.cache_info()["rejected"] == 1
        cache.put(2, b"y" * 8)  # exactly slot-sized fits
        assert cache.get(2) == b"y" * 8


def test_shared_ring_overwrites_oldest_slot():
    with SharedMemoryCache(slots=2, slot_bytes=64) as cache:
        cache.put(1, b"one")
        cache.put(2, b"two")
        cache.put(3, b"three")  # ring wraps: slot of doc 1 is overwritten
        assert cache.peek(1) is False
        assert cache.get(2) == b"two"
        assert cache.get(3) == b"three"
        assert cache.cache_info()["size"] == 2


def test_shared_two_handles_share_one_segment():
    name = f"rlzc-{uuid.uuid4().hex[:12]}"
    owner = SharedMemoryCache(slots=4, slot_bytes=256, name=name)
    attacher = SharedMemoryCache(slots=1, slot_bytes=1, name=name)  # geometry from owner
    try:
        assert owner.owner and not attacher.owner
        assert attacher.slots == 4 and attacher.slot_bytes == 256
        owner.put(11, b"from-owner")
        assert attacher.get(11) == b"from-owner"
        info = attacher.cache_info()
        assert info["hits"] == 1 and info["stores"] == 0
    finally:
        attacher.close()
        owner.close()


def test_shared_owner_unlinks_on_close():
    from multiprocessing import shared_memory

    name = f"rlzc-{uuid.uuid4().hex[:12]}"
    owner = SharedMemoryCache(slots=2, slot_bytes=64, name=name)
    owner.close()
    with pytest.raises(FileNotFoundError):
        segment = shared_memory.SharedMemory(name=name)
        segment.close()  # pragma: no cover - only reached on failure


def test_shared_lookup_is_an_index_probe_not_a_scan():
    """The open-addressing index must find documents without scanning the
    doc-id array, including after ring wrap-around leaves stale entries."""
    with SharedMemoryCache(slots=4, slot_bytes=64) as cache:
        for doc_id in range(10):  # wraps the 4-slot ring twice
            cache.put(doc_id, f"doc-{doc_id}".encode())
        # The last `slots` documents are live; everything older was evicted
        # and its index entry is stale.
        for doc_id in range(6):
            assert cache.get(doc_id) is None
        for doc_id in range(6, 10):
            assert cache.get(doc_id) == f"doc-{doc_id}".encode()


def test_shared_reclaims_stale_index_entries():
    """Stale index entries (their slot recycled by the ring) are reclaimed
    on insert, so the table never fills up with tombstones."""
    with SharedMemoryCache(slots=2, slot_bytes=64) as cache:
        for doc_id in range(100):  # 50x the ring, 12.5x the index table
            cache.put(doc_id, b"x")
        live = [doc_id for doc_id in range(100) if cache.get(doc_id) is not None]
        assert live == [98, 99]
        assert cache.cache_info()["size"] == 2


def test_shared_hit_miss_parity_with_lru():
    """On a workload without evictions the shared tier must count exactly
    the hits and misses LruCache counts for the same access sequence."""
    import random

    rng = random.Random(7)
    documents = {doc_id: f"document-{doc_id}".encode() * 3 for doc_id in range(16)}
    accesses = [rng.randrange(16) for _ in range(400)]
    lru = LruCache(16)
    with SharedMemoryCache(slots=16, slot_bytes=1024) as shared:
        for tier in (lru, shared):
            for doc_id in accesses:
                if tier.get(doc_id) is None:
                    tier.put(doc_id, documents[doc_id])
        lru_info = lru.cache_info()
        shared_info = shared.cache_info()
    assert shared_info["hits"] == lru_info["hits"]
    assert shared_info["misses"] == lru_info["misses"]
    assert shared_info["size"] == lru_info["size"]


def test_shared_stats_block_is_machine_wide():
    """shared_* counters live in the segment: every handle sees the fleet's
    totals while the plain counters stay per-handle."""
    name = f"rlzc-{uuid.uuid4().hex[:12]}"
    owner = SharedMemoryCache(slots=4, slot_bytes=256, name=name)
    attacher = SharedMemoryCache(name=name)
    try:
        owner.put(1, b"one")
        owner.get(1)  # owner hit
        attacher.get(1)  # attacher hit
        attacher.get(99)  # attacher miss
        owner_info = owner.cache_info()
        attacher_info = attacher.cache_info()
        # Per-handle counters diverge...
        assert owner_info["hits"] == 1 and owner_info["misses"] == 0
        assert attacher_info["hits"] == 1 and attacher_info["misses"] == 1
        # ...while the shared block agrees across handles.
        for info in (owner_info, attacher_info):
            assert info["shared_hits"] == 2
            assert info["shared_misses"] == 1
            assert info["shared_stores"] == 1
            assert info["shared_evictions"] == 0
    finally:
        attacher.close()
        owner.close()


def test_shared_evictions_counted():
    with SharedMemoryCache(slots=2, slot_bytes=64) as cache:
        cache.put(1, b"a")
        cache.put(2, b"b")
        assert cache.cache_info()["shared_evictions"] == 0
        cache.put(3, b"c")  # overwrites doc 1's slot
        cache.put(4, b"d")  # overwrites doc 2's slot
        info = cache.cache_info()
        assert info["shared_evictions"] == 2
        assert info["shared_stores"] == 4


def _child_reads_and_writes(name: str, queue) -> None:
    """Subprocess body: attach to the segment, read one doc, publish one."""
    cache = SharedMemoryCache(name=name)
    try:
        seen = cache.get(1)
        cache.put(2, b"from-child")
        queue.put((seen, cache.cache_info()["hits"]))
    finally:
        cache.close()


def test_shared_cache_is_visible_across_processes():
    """A document stored by this process is a *hit* in a separate reader
    process, and vice versa — the tier is one segment, not per-process."""
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    context = multiprocessing.get_context(method)
    name = f"rlzc-{uuid.uuid4().hex[:12]}"
    with SharedMemoryCache(slots=4, slot_bytes=256, name=name) as cache:
        cache.put(1, b"from-parent")
        queue = context.Queue()
        process = context.Process(target=_child_reads_and_writes, args=(name, queue))
        process.start()
        seen, child_hits = queue.get(timeout=30)
        process.join(timeout=30)
        assert process.exitcode == 0
        assert seen == b"from-parent"
        assert child_hits == 1
        assert cache.get(2) == b"from-child"  # child's store visible here


def _creator_then_exit(name: str, ready, release) -> None:
    """Subprocess body: create the segment, publish a doc, wait, exit.

    ``close()`` on exit unlinks the segment — exactly what a serving
    worker's crash-or-restart does to the readers still attached.
    """
    cache = SharedMemoryCache(slots=4, slot_bytes=256, name=name)
    try:
        cache.put(1, b"creator-bytes")
        ready.set()
        release.wait(timeout=30)
    finally:
        cache.close()


def test_shared_attacher_survives_creator_exit_mid_read():
    """The creator process exiting (and unlinking the segment) must not
    break an attacher mid-stream: its mapping stays valid, reads keep
    returning the exact cached bytes, and its own close is clean."""
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    context = multiprocessing.get_context(method)
    name = f"rlzc-{uuid.uuid4().hex[:12]}"
    ready = context.Event()
    release = context.Event()
    process = context.Process(target=_creator_then_exit, args=(name, ready, release))
    process.start()
    assert ready.wait(timeout=30)
    attacher = SharedMemoryCache(name=name)
    try:
        assert not attacher.owner
        assert attacher.get(1) == b"creator-bytes"  # read while creator lives
        release.set()
        process.join(timeout=30)
        assert process.exitcode == 0
        # Creator is gone and the segment is unlinked; the attacher's
        # mapping must keep serving byte-identical content...
        assert attacher.get(1) == b"creator-bytes"
        # ...and keep accepting new work.
        attacher.put(2, b"post-exit")
        assert attacher.get(2) == b"post-exit"
        info = attacher.cache_info()
        assert info["hits"] == 3 and info["stores"] == 1
    finally:
        attacher.close()  # non-owner: plain close, no double-unlink blowup
