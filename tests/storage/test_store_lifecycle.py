"""Store lifecycle: idempotent close, StoreClosedError, cache-tier plumbing."""

from __future__ import annotations

import pytest

from repro.core import DictionaryConfig, RlzCompressor
from repro.errors import StorageError, StoreClosedError
from repro.storage import LruCache, NullCache, RlzStore, SharedMemoryCache


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, gov_small):
    compressor = RlzCompressor(
        dictionary_config=DictionaryConfig(size=32 * 1024, sample_size=512),
        scheme="ZV",
    )
    path = tmp_path_factory.mktemp("lifecycle") / "gov.repro"
    RlzStore.write(compressor.compress(gov_small), path)
    return path


def test_close_is_idempotent(store_path):
    store = RlzStore.open(store_path)
    store.close()
    store.close()  # second close must be a no-op, not a crash
    assert store.closed


def test_get_after_close_raises_store_closed(store_path, gov_small):
    store = RlzStore.open(store_path)
    doc_id = gov_small.doc_ids()[0]
    store.get(doc_id)
    store.close()
    with pytest.raises(StoreClosedError):
        store.get(doc_id)
    with pytest.raises(StoreClosedError):
        store.get_many([doc_id])
    with pytest.raises(StoreClosedError):
        next(store.iter_documents())


def test_store_closed_error_is_a_storage_error(store_path):
    store = RlzStore.open(store_path)
    store.close()
    with pytest.raises(StorageError):  # existing handlers keep working
        store.get(0)


def test_context_manager_exit_then_close(store_path, gov_small):
    with RlzStore.open(store_path) as store:
        store.get(gov_small.doc_ids()[0])
    store.close()  # after __exit__ already closed
    assert store.closed


def test_decode_cache_size_shim_warns_and_works(store_path, gov_small):
    doc_id = gov_small.doc_ids()[0]
    with pytest.warns(DeprecationWarning, match="decode_cache_size"):
        store = RlzStore.open(store_path, decode_cache_size=3)
    with store:
        store.get(doc_id)
        store.get(doc_id)
        assert store.cache_info["hits"] == 1
        assert isinstance(store.cache, LruCache)


def test_decode_cache_size_zero_maps_to_null_tier(store_path):
    with pytest.warns(DeprecationWarning):
        store = RlzStore.open(store_path, decode_cache_size=0)
    with store:
        assert isinstance(store.cache, NullCache)


def test_default_open_has_no_cache_and_no_warning(store_path, recwarn):
    with RlzStore.open(store_path) as store:
        assert isinstance(store.cache, NullCache)
    deprecations = [w for w in recwarn.list if w.category is DeprecationWarning]
    assert not deprecations


def test_cache_and_decode_cache_size_are_mutually_exclusive(store_path):
    with pytest.raises(StorageError):
        RlzStore.open(store_path, decode_cache_size=3, cache=LruCache(3))


def test_injected_tier_serves_and_counts(store_path, gov_small):
    doc_ids = gov_small.doc_ids()[:4]
    with RlzStore.open(store_path, cache=LruCache(2)) as store:
        first = store.get_many(doc_ids)
        again = store.get_many(doc_ids)
        assert first == again
        assert store.cache_info["capacity"] == 2


def test_shared_tier_through_store(store_path, gov_small):
    doc_id = gov_small.doc_ids()[0]
    tier = SharedMemoryCache(slots=4, slot_bytes=64 * 1024)
    with RlzStore.open(store_path, cache=tier) as store:
        document = store.get(doc_id)
        assert store.get(doc_id) == document
        assert store.cache_info["hits"] == 1
    # store.close() closed the tier (owner): the segment is unlinked.
    assert tier.cache_info()["size"] == 0
