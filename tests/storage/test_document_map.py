"""Tests for the document map."""

import pytest

from repro.errors import StorageError
from repro.storage import DocumentEntry, DocumentMap


def make_map():
    return DocumentMap(
        [
            DocumentEntry(doc_id=0, offset=0, length=100),
            DocumentEntry(doc_id=1, offset=100, length=250, block_index=0, index_in_block=1),
            DocumentEntry(doc_id=5, offset=350, length=10),
        ]
    )


def test_lookup_and_iteration():
    document_map = make_map()
    assert len(document_map) == 3
    assert document_map.lookup(1).length == 250
    assert document_map.doc_ids() == [0, 1, 5]
    assert [entry.doc_id for entry in document_map] == [0, 1, 5]


def test_lookup_missing_raises():
    with pytest.raises(StorageError):
        make_map().lookup(42)


def test_add_rejects_duplicates():
    document_map = make_map()
    with pytest.raises(StorageError):
        document_map.add(DocumentEntry(doc_id=0, offset=1, length=1))


def test_duplicate_ids_in_constructor_rejected():
    with pytest.raises(StorageError):
        DocumentMap([DocumentEntry(0, 0, 1), DocumentEntry(0, 1, 1)])


def test_serialisation_roundtrip():
    document_map = make_map()
    restored = DocumentMap.from_bytes(document_map.to_bytes())
    assert restored.doc_ids() == document_map.doc_ids()
    assert restored.lookup(1) == document_map.lookup(1)


def test_empty_map_roundtrip():
    assert len(DocumentMap.from_bytes(DocumentMap().to_bytes())) == 0


def test_truncated_serialisation_raises():
    data = make_map().to_bytes()
    with pytest.raises(StorageError):
        DocumentMap.from_bytes(data[: len(data) - 4])
    with pytest.raises(StorageError):
        DocumentMap.from_bytes(b"\x01")
