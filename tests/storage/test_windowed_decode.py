"""Windowed partial decode: ``RlzStore.get_window`` and its cost model.

The snippet-serving path promises two things: the window's *bytes* equal
the corresponding slice of a whole-document decode (anywhere — including
straddling factor boundaries, clamped at the end, empty past the end),
and its *cost* is strictly lower — the ``decoded_bytes`` counter charges
only the factors intersecting the window, which is the measurable
evidence that partial decode pays over decode-the-document-and-slice.
"""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage import RlzStore


@pytest.fixture(scope="module")
def store(tmp_path_factory, gov_compressed):
    path = tmp_path_factory.mktemp("window") / "gov.rlz"
    RlzStore.write(gov_compressed, path)
    with RlzStore.open(path) as opened:
        yield opened


def test_window_equals_full_decode_slice(store, gov_small):
    for document in list(gov_small)[:4]:
        full = document.content
        for start in (0, 1, 7, 100, len(full) // 2, len(full) - 9):
            for length in (1, 13, 160):
                assert store.get_window(document.doc_id, start, length) == full[
                    start : start + length
                ], (document.doc_id, start, length)


def test_every_offset_round_trips_for_one_document(store, gov_small):
    """A sliding window over an entire document hits every factor edge."""
    document = next(iter(gov_small))
    full = document.content
    width = 64
    for start in range(0, len(full), 37):
        assert store.get_window(document.doc_id, start, width) == full[
            start : start + width
        ], start


def test_window_is_clamped_at_document_end(store, gov_small):
    document = next(iter(gov_small))
    full = document.content
    assert store.get_window(document.doc_id, len(full) - 5, 1000) == full[-5:]
    assert store.get_window(document.doc_id, 0, len(full) + 999) == full


def test_window_past_end_is_empty(store, gov_small):
    document = next(iter(gov_small))
    assert store.get_window(document.doc_id, len(document.content), 10) == b""
    assert store.get_window(document.doc_id, len(document.content) + 50, 10) == b""


def test_zero_length_window_is_empty(store, gov_small):
    document = next(iter(gov_small))
    assert store.get_window(document.doc_id, 10, 0) == b""


def test_negative_arguments_are_rejected(store, gov_small):
    document = next(iter(gov_small))
    with pytest.raises(StorageError):
        store.get_window(document.doc_id, -1, 10)
    with pytest.raises(StorageError):
        store.get_window(document.doc_id, 0, -1)


def test_unknown_document_is_rejected(store):
    with pytest.raises(StorageError):
        store.get_window(123456, 0, 10)


def test_window_decodes_strictly_fewer_bytes_than_full_decode(store, gov_small):
    """The acceptance-criteria counter: snippets must not pay full price."""
    document = next(iter(gov_small))
    before = store.decoded_bytes
    window = store.get_window(document.doc_id, len(document.content) // 2, 160)
    window_cost = store.decoded_bytes - before
    assert len(window) == 160
    # The charge covers at least the window itself (plus partial head/tail
    # factors) but strictly less than the whole document.
    assert window_cost >= len(window)
    assert window_cost < len(document.content)

    before = store.decoded_bytes
    full = store.get(document.doc_id)
    full_cost = store.decoded_bytes - before
    assert full_cost == len(full) == len(document.content)
    assert window_cost < full_cost


def test_whole_document_reads_charge_document_size(store, gov_small):
    documents = list(gov_small)[:3]
    before = store.decoded_bytes
    store.get_many([document.doc_id for document in documents])
    assert store.decoded_bytes - before == sum(
        len(document.content) for document in documents
    )
