"""Failure-injection tests: corrupted containers and mismatched decoders.

A production document store must fail loudly (with the library's own
exception types) rather than return silently wrong documents when its files
are damaged.  These tests corrupt real containers in targeted ways and check
the failure mode.
"""

import json
import struct

import pytest

from repro.core import DictionaryConfig, RlzCompressor
from repro.errors import CorruptArchiveError, DecodingError, ReproError, StorageError
from repro.storage import BlockedStore, BlockedStoreConfig, RlzStore, read_container_header


@pytest.fixture()
def rlz_container(tmp_path, gov_small, gov_dictionary):
    compressor = RlzCompressor(dictionary=gov_dictionary, scheme="ZZ")
    compressed = compressor.compress(gov_small)
    path = tmp_path / "victim.repro"
    RlzStore.write(compressed, path)
    return path


def test_truncated_payload_detected(rlz_container, gov_small):
    data = rlz_container.read_bytes()
    rlz_container.write_bytes(data[:-200])
    with RlzStore.open(rlz_container) as store:
        last_doc = gov_small.doc_ids()[-1]
        with pytest.raises(ReproError):
            store.get(last_doc)


def test_corrupted_payload_bytes_detected(rlz_container, gov_small):
    """Flipping bytes inside a zlib-coded blob must raise, not return garbage."""
    header = read_container_header(rlz_container)
    data = bytearray(rlz_container.read_bytes())
    first_entry = next(iter(header.document_map))
    start = header.payload_offset + first_entry.offset + 4
    for offset in range(start, start + 16):
        data[offset] ^= 0xFF
    rlz_container.write_bytes(bytes(data))
    with RlzStore.open(rlz_container) as store:
        with pytest.raises(ReproError):
            store.get(first_entry.doc_id)


def test_truncated_header_detected(rlz_container):
    rlz_container.write_bytes(rlz_container.read_bytes()[:10])
    with pytest.raises(StorageError):
        RlzStore.open(rlz_container)


def test_wrong_scheme_metadata_fails_decoding(rlz_container, gov_small):
    """Rewriting the scheme in the metadata is caught at open time (no silent wrong data).

    RPRC2 containers carry a CRC over the metadata section, so the tamper
    never even reaches the decoder: the open itself raises
    :class:`CorruptArchiveError`.
    """
    original = rlz_container.read_bytes()
    marker = b'"scheme": "ZZ"'
    assert marker in original
    rlz_container.write_bytes(original.replace(marker, b'"scheme": "UV"'))
    with pytest.raises(CorruptArchiveError):
        RlzStore.open(rlz_container)


def test_corrupted_block_detected(tmp_path, gov_small):
    path = tmp_path / "blocked.repro"
    BlockedStore.build(gov_small, path, BlockedStoreConfig("zlib", block_size=64 * 1024))
    header = read_container_header(path)
    data = bytearray(path.read_bytes())
    # Corrupt the middle of the first block.
    offset, length = (int(v) for v in header.metadata["blocks"][0])
    for position in range(header.payload_offset + offset + length // 2,
                          header.payload_offset + offset + length // 2 + 8):
        data[position] ^= 0xAA
    path.write_bytes(bytes(data))
    with BlockedStore.open(path) as store:
        with pytest.raises(Exception):
            store.get(gov_small.doc_ids()[0])


def test_decoding_error_is_repro_error():
    assert issubclass(DecodingError, ReproError)
    assert issubclass(StorageError, ReproError)
