"""Tests for the analytical disk model."""

import pytest

from repro.storage import DiskModel


def test_first_read_pays_a_seek():
    disk = DiskModel()
    cost = disk.charge_read(0, 1024)
    assert cost >= disk.seek_time + disk.rotational_latency
    assert disk.accounting.seeks == 1
    assert disk.accounting.bytes_read == 1024


def test_sequential_reads_do_not_seek():
    disk = DiskModel()
    disk.charge_read(0, 4096)
    cost = disk.charge_read(4096, 4096)
    assert disk.accounting.seeks == 1
    assert cost == pytest.approx(4096 / disk.transfer_rate)


def test_backward_read_seeks_again():
    disk = DiskModel()
    disk.charge_read(10_000_000, 100)
    disk.charge_read(0, 100)
    assert disk.accounting.seeks == 2


def test_readahead_window_counts_as_sequential():
    disk = DiskModel(readahead=64 * 1024)
    disk.charge_read(0, 1000)
    disk.charge_read(1000 + 32 * 1024, 1000)  # gap within readahead
    assert disk.accounting.seeks == 1
    disk.charge_read(1000 + 10_000_000, 1000)  # far beyond readahead
    assert disk.accounting.seeks == 2


def test_transfer_time_scales_with_bytes():
    disk = DiskModel()
    small = disk.charge_read(0, 1024)
    large = disk.charge_read(10**9, 1024 * 1024)
    assert large - disk.seek_time - disk.rotational_latency > small - disk.seek_time - disk.rotational_latency


def test_elapsed_accumulates_and_reset_clears():
    disk = DiskModel()
    disk.charge_read(0, 100)
    disk.charge_read(10**8, 100)
    assert disk.elapsed > 0
    disk.reset()
    assert disk.elapsed == 0.0
    assert disk.accounting.seeks == 0
    # After a reset the head position is forgotten: next read seeks again.
    disk.charge_read(200, 100)
    assert disk.accounting.seeks == 1


def test_invalid_transfer_rate_rejected():
    with pytest.raises(ValueError):
        DiskModel(transfer_rate=0)


def test_random_access_is_much_slower_than_sequential():
    """The asymmetry behind the paper's sequential vs query-log gap."""
    sequential = DiskModel()
    offset = 0
    for _ in range(100):
        sequential.charge_read(offset, 8192)
        offset += 8192
    random_access = DiskModel()
    for i in range(100):
        random_access.charge_read((i * 7919) % (10**9), 8192)
    assert random_access.elapsed > 10 * sequential.elapsed
