"""Tests for the blocked zlib/lzma baseline store."""

import pytest

from repro.errors import StorageError
from repro.storage import BlockedStore, BlockedStoreConfig


def test_config_validation():
    with pytest.raises(StorageError):
        BlockedStoreConfig(compressor="bzip2")
    with pytest.raises(StorageError):
        BlockedStoreConfig(block_size=-1)


@pytest.mark.parametrize("compressor", ["zlib", "lzma", "none"])
def test_roundtrip_one_document_per_block(tmp_path, gov_small, compressor):
    path = tmp_path / f"{compressor}.repro"
    BlockedStore.build(gov_small, path, BlockedStoreConfig(compressor=compressor, block_size=0))
    with BlockedStore.open(path) as store:
        assert store.num_blocks == len(gov_small)
        for document in gov_small:
            assert store.get(document.doc_id) == document.content


def test_roundtrip_multi_document_blocks(tmp_path, gov_small):
    path = tmp_path / "blocked.repro"
    BlockedStore.build(
        gov_small, path, BlockedStoreConfig(compressor="zlib", block_size=32 * 1024)
    )
    with BlockedStore.open(path) as store:
        assert store.num_blocks < len(gov_small)
        for document in gov_small:
            assert store.get(document.doc_id) == document.content
        decoded = dict(store.iter_documents())
        assert decoded[gov_small.doc_ids()[-1]] == gov_small[len(gov_small) - 1].content


def test_bigger_blocks_compress_better(tmp_path, gov_small):
    """The paper's core baseline trade-off."""
    small_path = tmp_path / "small.repro"
    large_path = tmp_path / "large.repro"
    BlockedStore.build(gov_small, small_path, BlockedStoreConfig("zlib", block_size=0))
    BlockedStore.build(gov_small, large_path, BlockedStoreConfig("zlib", block_size=256 * 1024))
    with BlockedStore.open(small_path) as small, BlockedStore.open(large_path) as large:
        assert large.compression_percent() < small.compression_percent()


def test_lzma_compresses_better_than_zlib(tmp_path, gov_small):
    zlib_path = tmp_path / "z.repro"
    lzma_path = tmp_path / "l.repro"
    BlockedStore.build(gov_small, zlib_path, BlockedStoreConfig("zlib", block_size=128 * 1024))
    BlockedStore.build(gov_small, lzma_path, BlockedStoreConfig("lzma", block_size=128 * 1024))
    with BlockedStore.open(zlib_path) as z, BlockedStore.open(lzma_path) as l:
        assert l.compression_percent() < z.compression_percent()


def test_block_reads_charged_to_disk(tmp_path, gov_small):
    path = tmp_path / "disk.repro"
    BlockedStore.build(gov_small, path, BlockedStoreConfig("zlib", block_size=64 * 1024))
    with BlockedStore.open(path) as store:
        store.disk.reset()
        store.get(gov_small.doc_ids()[0])
        assert store.disk.accounting.bytes_read > 0


def test_metadata_exposed(tmp_path, gov_small):
    path = tmp_path / "meta.repro"
    BlockedStore.build(gov_small, path, BlockedStoreConfig("lzma", block_size=100_000, level=3))
    with BlockedStore.open(path) as store:
        assert store.compressor == "lzma"
        assert store.block_size == 100_000
        assert store.original_size == gov_small.total_size
        assert len(store) == len(gov_small)


def test_unknown_document_raises(tmp_path, gov_small):
    path = tmp_path / "u.repro"
    BlockedStore.build(gov_small, path, BlockedStoreConfig("zlib"))
    with BlockedStore.open(path) as store:
        with pytest.raises(StorageError):
            store.get(99999)
