"""Tests for the store-level retrieval fast path: get_many and the cache."""

import pytest

from repro.storage import RlzStore


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, gov_compressed):
    path = tmp_path_factory.mktemp("rlzfast") / "gov.repro"
    RlzStore.write(gov_compressed, path)
    return path


def test_get_many_matches_get(store_path, gov_small):
    doc_ids = gov_small.doc_ids()
    with RlzStore.open(store_path) as store:
        batch = store.get_many(doc_ids)
        assert batch == [store.get(doc_id) for doc_id in doc_ids]


def test_get_many_handles_repeats_and_order(store_path, gov_small):
    doc_ids = gov_small.doc_ids()
    request = [doc_ids[2], doc_ids[0], doc_ids[2], doc_ids[1], doc_ids[0]]
    with RlzStore.open(store_path) as store:
        batch = store.get_many(request)
    assert len(batch) == len(request)
    assert batch[0] == batch[2]
    assert batch[1] == batch[4]
    for doc_id, content in zip(request, batch):
        document = next(d for d in gov_small if d.doc_id == doc_id)
        assert content == document.content


def test_cache_serves_repeated_access_without_disk_reads(store_path, gov_small):
    doc_id = gov_small.doc_ids()[0]
    with RlzStore.open(store_path, decode_cache_size=4) as store:
        first = store.get(doc_id)
        store.disk.reset()
        second = store.get(doc_id)
        assert second == first
        assert store.disk.accounting.seeks == 0
        assert store.cache_info["hits"] == 1
        assert store.cache_info["misses"] >= 1


def test_cache_evicts_least_recently_used(store_path, gov_small):
    doc_ids = gov_small.doc_ids()[:3]
    with RlzStore.open(store_path, decode_cache_size=2) as store:
        store.get(doc_ids[0])
        store.get(doc_ids[1])
        store.get(doc_ids[0])  # refresh doc 0
        store.get(doc_ids[2])  # evicts doc 1
        store.disk.reset()
        store.get(doc_ids[0])
        assert store.disk.accounting.seeks == 0
        store.get(doc_ids[1])
        assert store.disk.accounting.seeks == 1


def test_cache_disabled_by_default(store_path, gov_small):
    doc_id = gov_small.doc_ids()[0]
    with RlzStore.open(store_path) as store:
        store.get(doc_id)
        store.disk.reset()
        store.get(doc_id)
        assert store.disk.accounting.seeks == 1
        assert store.cache_info["capacity"] == 0


def test_get_many_uses_cache(store_path, gov_small):
    doc_ids = gov_small.doc_ids()[:4]
    with RlzStore.open(store_path, decode_cache_size=8) as store:
        store.get_many(doc_ids)
        store.disk.reset()
        again = store.get_many(doc_ids)
        assert store.disk.accounting.seeks == 0
        assert again == [store.get(doc_id) for doc_id in doc_ids]
