"""Tests for the store-level retrieval fast path: get_many and the cache."""

import pytest

from repro.storage import RlzStore


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, gov_compressed):
    path = tmp_path_factory.mktemp("rlzfast") / "gov.repro"
    RlzStore.write(gov_compressed, path)
    return path


def test_get_many_matches_get(store_path, gov_small):
    doc_ids = gov_small.doc_ids()
    with RlzStore.open(store_path) as store:
        batch = store.get_many(doc_ids)
        assert batch == [store.get(doc_id) for doc_id in doc_ids]


def test_get_many_handles_repeats_and_order(store_path, gov_small):
    doc_ids = gov_small.doc_ids()
    request = [doc_ids[2], doc_ids[0], doc_ids[2], doc_ids[1], doc_ids[0]]
    with RlzStore.open(store_path) as store:
        batch = store.get_many(request)
    assert len(batch) == len(request)
    assert batch[0] == batch[2]
    assert batch[1] == batch[4]
    for doc_id, content in zip(request, batch):
        document = next(d for d in gov_small if d.doc_id == doc_id)
        assert content == document.content


def test_cache_serves_repeated_access_without_disk_reads(store_path, gov_small):
    doc_id = gov_small.doc_ids()[0]
    with RlzStore.open(store_path, decode_cache_size=4) as store:
        first = store.get(doc_id)
        store.disk.reset()
        second = store.get(doc_id)
        assert second == first
        assert store.disk.accounting.seeks == 0
        assert store.cache_info["hits"] == 1
        assert store.cache_info["misses"] >= 1


def test_cache_evicts_least_recently_used(store_path, gov_small):
    doc_ids = gov_small.doc_ids()[:3]
    with RlzStore.open(store_path, decode_cache_size=2) as store:
        store.get(doc_ids[0])
        store.get(doc_ids[1])
        store.get(doc_ids[0])  # refresh doc 0
        store.get(doc_ids[2])  # evicts doc 1
        store.disk.reset()
        store.get(doc_ids[0])
        assert store.disk.accounting.seeks == 0
        store.get(doc_ids[1])
        assert store.disk.accounting.seeks == 1


def test_cache_disabled_by_default(store_path, gov_small):
    doc_id = gov_small.doc_ids()[0]
    with RlzStore.open(store_path) as store:
        store.get(doc_id)
        store.disk.reset()
        store.get(doc_id)
        assert store.disk.accounting.seeks == 1
        assert store.cache_info["capacity"] == 0


def test_get_many_uses_cache(store_path, gov_small):
    doc_ids = gov_small.doc_ids()[:4]
    with RlzStore.open(store_path, decode_cache_size=8) as store:
        store.get_many(doc_ids)
        store.disk.reset()
        again = store.get_many(doc_ids)
        assert store.disk.accounting.seeks == 0
        assert again == [store.get(doc_id) for doc_id in doc_ids]


def _access_sequences(doc_ids):
    """Access patterns that exercise hits, repeats, eviction and interleaving."""
    return [
        [doc_ids[0], doc_ids[0]],
        [doc_ids[0], doc_ids[1], doc_ids[0], doc_ids[2], doc_ids[0]],
        [doc_ids[2], doc_ids[2], doc_ids[2]],
        list(doc_ids[:4]) * 2,
        [doc_ids[3], doc_ids[0], doc_ids[3], doc_ids[1], doc_ids[1], doc_ids[2]],
    ]


@pytest.mark.parametrize("capacity", [0, 1, 2, 8])
def test_get_many_cache_accounting_matches_get(store_path, gov_small, capacity):
    """The same access sequence must produce identical hit/miss counters,
    cache size and LRU contents whether issued via ``get`` or ``get_many``
    — including when the batch itself overflows the cache and evicts
    entries mid-replay."""
    doc_ids = gov_small.doc_ids()
    for sequence in _access_sequences(doc_ids):
        with RlzStore.open(store_path, decode_cache_size=capacity) as via_get, RlzStore.open(
            store_path, decode_cache_size=capacity
        ) as via_get_many:
            expected = [via_get.get(doc_id) for doc_id in sequence]
            batch = via_get_many.get_many(sequence)
            assert batch == expected
            assert via_get_many.cache_info == via_get.cache_info
            # Same contents *and* the same LRU recency order.
            assert list(via_get_many._cache.items()) == list(via_get._cache.items())


def test_get_many_replays_entry_evicted_during_batch(store_path, gov_small):
    """An ID cached before the batch but evicted while the batch replays
    must be re-decoded exactly as ``get`` would (miss counted, bytes
    correct)."""
    doc_ids = gov_small.doc_ids()
    with RlzStore.open(store_path, decode_cache_size=1) as store:
        a, b = doc_ids[0], doc_ids[1]
        store.get(a)  # cache == {a}
        batch = store.get_many([b, a])  # b evicts a, then a must re-decode
        assert batch == [store.get(b), store.get(a)]

    with RlzStore.open(store_path, decode_cache_size=1) as reference:
        reference.get(a)
        reference.get(b)
        reference.get(a)
    with RlzStore.open(store_path, decode_cache_size=1) as store:
        store.get(a)
        store.get_many([b, a])
        assert store.cache_info == reference.cache_info
