"""Tests for the on-disk RLZ store."""

import pytest

from repro.errors import StorageError
from repro.storage import RawStore, RlzStore


@pytest.fixture(scope="module")
def store_path(tmp_path_factory, gov_compressed):
    path = tmp_path_factory.mktemp("rlzstore") / "gov.repro"
    RlzStore.write(gov_compressed, path)
    return path


def test_written_file_is_smaller_than_collection(store_path, gov_small):
    assert store_path.stat().st_size < gov_small.total_size


def test_random_access_roundtrip(store_path, gov_small):
    with RlzStore.open(store_path) as store:
        for document in gov_small:
            assert store.get(document.doc_id) == document.content


def test_sequential_iteration(store_path, gov_small):
    with RlzStore.open(store_path) as store:
        decoded = dict(store.iter_documents())
    assert set(decoded) == set(gov_small.doc_ids())
    for document in gov_small:
        assert decoded[document.doc_id] == document.content


def test_store_metadata(store_path, gov_small, gov_compressed):
    with RlzStore.open(store_path) as store:
        assert store.scheme_name == "ZV"
        assert store.original_size == gov_small.total_size
        assert len(store) == len(gov_small)
        assert store.doc_ids() == gov_small.doc_ids()
        assert store.compression_percent() == pytest.approx(
            gov_compressed.compression_ratio(include_dictionary=False), abs=0.1
        )
        assert store.compression_percent(include_dictionary=True) > store.compression_percent()


def test_disk_model_is_charged(store_path, gov_small):
    with RlzStore.open(store_path) as store:
        store.disk.reset()
        store.get(gov_small.doc_ids()[0])
        assert store.disk.accounting.seeks == 1
        assert store.disk.accounting.bytes_read > 0
        assert store.disk.elapsed > 0


def test_unknown_document_raises(store_path):
    with RlzStore.open(store_path) as store:
        with pytest.raises(StorageError):
            store.get(123456)


def test_opening_wrong_store_type_raises(tmp_path, gov_small):
    path = RawStore.build(gov_small, tmp_path / "raw.repro")
    with pytest.raises(StorageError):
        RlzStore.open(path)
