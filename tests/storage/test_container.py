"""Tests for the container file format."""

import pytest

from repro.errors import StorageError
from repro.storage import DocumentEntry, DocumentMap, read_container_header, write_container


def test_write_and_read_header(tmp_path):
    path = tmp_path / "test.repro"
    document_map = DocumentMap([DocumentEntry(0, 0, 4), DocumentEntry(1, 4, 6)])
    payload = b"abcdWORLD!"
    total = write_container(
        path,
        "rlz",
        {"scheme": "ZV", "answer": 42},
        document_map,
        b"dictionary-bytes",
        payload,
    )
    assert total == path.stat().st_size
    header = read_container_header(path)
    assert header.store_type == "rlz"
    assert header.metadata == {"scheme": "ZV", "answer": 42}
    assert header.dictionary == b"dictionary-bytes"
    assert header.document_map.doc_ids() == [0, 1]
    with path.open("rb") as handle:
        handle.seek(header.payload_offset)
        assert handle.read() == payload


def test_empty_dictionary_and_payload(tmp_path):
    path = tmp_path / "empty.repro"
    write_container(path, "raw", {}, DocumentMap(), b"", b"")
    header = read_container_header(path)
    assert header.dictionary == b""
    assert len(header.document_map) == 0


def test_bad_magic_raises(tmp_path):
    path = tmp_path / "bad.repro"
    path.write_bytes(b"NOPE" + b"\x00" * 64)
    with pytest.raises(StorageError):
        read_container_header(path)


def test_truncated_file_raises(tmp_path):
    path = tmp_path / "trunc.repro"
    write_container(path, "rlz", {"a": 1}, DocumentMap(), b"dict", b"payload")
    data = path.read_bytes()
    path.write_bytes(data[:20])
    with pytest.raises(StorageError):
        read_container_header(path)
