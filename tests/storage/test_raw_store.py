"""Tests for the raw (ascii baseline) store."""

import pytest

from repro.errors import StorageError
from repro.storage import BlockedStore, RawStore


@pytest.fixture(scope="module")
def raw_path(tmp_path_factory, gov_small):
    path = tmp_path_factory.mktemp("rawstore") / "ascii.repro"
    RawStore.build(gov_small, path)
    return path


def test_random_access_roundtrip(raw_path, gov_small):
    with RawStore.open(raw_path) as store:
        for document in gov_small:
            assert store.get(document.doc_id) == document.content


def test_sequential_iteration(raw_path, gov_small):
    with RawStore.open(raw_path) as store:
        decoded = dict(store.iter_documents())
    assert len(decoded) == len(gov_small)


def test_no_compression(raw_path, gov_small):
    with RawStore.open(raw_path) as store:
        assert store.compression_percent() == 100.0
        assert store.original_size == gov_small.total_size
    assert raw_path.stat().st_size >= gov_small.total_size


def test_disk_charged_full_document_size(raw_path, gov_small):
    with RawStore.open(raw_path) as store:
        store.disk.reset()
        document = gov_small[0]
        store.get(document.doc_id)
        assert store.disk.accounting.bytes_read == document.size


def test_unknown_document_raises(raw_path):
    with RawStore.open(raw_path) as store:
        with pytest.raises(StorageError):
            store.get(424242)


def test_opening_wrong_store_type_raises(tmp_path, gov_small):
    from repro.storage import BlockedStoreConfig

    path = tmp_path / "blocked.repro"
    BlockedStore.build(gov_small, path, BlockedStoreConfig("zlib"))
    with pytest.raises(StorageError):
        RawStore.open(path)
