"""Tests for query generation and the query-log builder."""

import pytest

from repro.errors import SearchError
from repro.search import InvertedIndex, QueryLogBuilder, generate_queries


def test_generate_queries_deterministic(gov_small):
    a = generate_queries(gov_small, num_queries=20, seed=1)
    b = generate_queries(gov_small, num_queries=20, seed=1)
    assert a == b
    assert len(a) == 20
    assert all(1 <= len(query.split()) <= 4 for query in a)


def test_generate_queries_draw_from_collection_vocabulary(gov_small):
    queries = generate_queries(gov_small, num_queries=10, seed=2)
    corpus_text = " ".join(document.text().lower() for document in gov_small)
    hit = sum(1 for query in queries for term in query.split() if term in corpus_text)
    total = sum(len(query.split()) for query in queries)
    assert hit / total > 0.9


def test_generate_queries_validation(gov_small):
    with pytest.raises(SearchError):
        generate_queries(gov_small, num_queries=0)


def test_query_log_builder_caps_requests(gov_small):
    index = InvertedIndex.build(gov_small)
    queries = generate_queries(gov_small, num_queries=50, seed=3)
    builder = QueryLogBuilder(index, results_per_query=5, max_requests=37)
    requests = builder.build(queries)
    assert len(requests) == 37
    valid_ids = set(gov_small.doc_ids())
    assert all(doc_id in valid_ids for doc_id in requests)


def test_query_log_builder_results_per_query(gov_small):
    index = InvertedIndex.build(gov_small)
    builder = QueryLogBuilder(index, results_per_query=3, max_requests=1000)
    requests = builder.build(generate_queries(gov_small, num_queries=4, seed=4))
    assert len(requests) <= 4 * 3


def test_builder_validation(gov_small):
    index = InvertedIndex.build(gov_small)
    with pytest.raises(SearchError):
        QueryLogBuilder(index, results_per_query=0)
    with pytest.raises(SearchError):
        QueryLogBuilder(index, max_requests=0)
