"""Tests for the search tokenizer."""

from repro.search import STOPWORDS, strip_markup, tokenize_text


def test_strip_markup_removes_tags():
    assert strip_markup("<p>Hello <b>world</b></p>").split() == ["Hello", "world"]


def test_tokenize_lowercases_and_splits():
    assert tokenize_text("Compression Ratio 42") == ["compression", "ratio", "42"]


def test_tokenize_removes_stopwords_by_default():
    terms = tokenize_text("the quick brown fox and the lazy dog")
    assert "the" not in terms
    assert "and" not in terms
    assert "quick" in terms


def test_tokenize_can_keep_stopwords():
    terms = tokenize_text("the quick fox", remove_stopwords=False)
    assert terms[0] == "the"


def test_tokenize_ignores_markup_attributes():
    terms = tokenize_text('<a href="http://example.gov/page.html" class="nav">Budget report</a>')
    assert "budget" in terms and "report" in terms
    assert "href" not in terms


def test_stopwords_are_lowercase():
    assert all(word == word.lower() for word in STOPWORDS)


def test_empty_input():
    assert tokenize_text("") == []
    assert tokenize_text("<br/>") == []
