"""Tests for the search tokenizer.

Beyond basic tokenisation, the hardening battery covers the damaged
markup real web archives contain (unterminated tags, nested tags, bare
``<`` used as text) and the offset contract snippet serving relies on:
``strip_markup`` is length-preserving, so the character offsets
:func:`tokenize_with_offsets` reports index into the *original* text.
"""

from repro.search import (
    STOPWORDS,
    strip_markup,
    tokenize_text,
    tokenize_with_offsets,
)


def test_strip_markup_removes_tags():
    assert strip_markup("<p>Hello <b>world</b></p>").split() == ["Hello", "world"]


def test_tokenize_lowercases_and_splits():
    assert tokenize_text("Compression Ratio 42") == ["compression", "ratio", "42"]


def test_tokenize_removes_stopwords_by_default():
    terms = tokenize_text("the quick brown fox and the lazy dog")
    assert "the" not in terms
    assert "and" not in terms
    assert "quick" in terms


def test_tokenize_can_keep_stopwords():
    terms = tokenize_text("the quick fox", remove_stopwords=False)
    assert terms[0] == "the"


def test_tokenize_ignores_markup_attributes():
    terms = tokenize_text('<a href="http://example.gov/page.html" class="nav">Budget report</a>')
    assert "budget" in terms and "report" in terms
    assert "href" not in terms


def test_stopwords_are_lowercase():
    assert all(word == word.lower() for word in STOPWORDS)


def test_empty_input():
    assert tokenize_text("") == []
    assert tokenize_text("<br/>") == []


# ----------------------------------------------------------------------
# Damaged markup (truncated and malformed real-web documents)
# ----------------------------------------------------------------------
def test_unterminated_tag_is_stripped_to_end_of_text():
    # A truncated document that ends mid-tag: the attribute soup must not
    # leak into the vocabulary.
    terms = tokenize_text('budget report <a href="http://example.gov/page')
    assert terms == ["budget", "report"]


def test_unterminated_closing_and_bang_tags_are_stripped():
    assert tokenize_text("summary </div class=x") == ["summary"]
    assert tokenize_text("summary <!-- truncated comment") == ["summary"]


def test_nested_tags_are_stripped_innermost_first():
    assert tokenize_text("before <a <b>> after") == ["before", "after"]
    assert tokenize_text("<<i>>text<</i>>") == ["text"]


def test_bare_less_than_as_text_is_preserved():
    # With no closing ``>`` anywhere after it, a bare ``<`` is text, not
    # the start of a tag (``<`` followed by a space is not a tag name).
    assert strip_markup("5 < 6") == "5 < 6"
    assert tokenize_text("5 < 6") == ["5", "6"]
    assert tokenize_text("7 > 2") == ["7", "2"]


def test_unicode_text_tokenizes():
    terms = tokenize_text("<p>café économie zone 42</p>")
    # Terms are ASCII alphanumeric runs; accented characters split them
    # but never crash the tokenizer or corrupt following terms.
    assert "zone" in terms and "42" in terms


def test_empty_document_with_only_markup():
    assert tokenize_text("<html><body></body></html>") == []
    assert tokenize_with_offsets("<html><body></body></html>") == []


# ----------------------------------------------------------------------
# The offset contract snippet serving relies on
# ----------------------------------------------------------------------
def test_strip_markup_preserves_length_and_offsets():
    text = '<p>Hello <b class="x">world</b></p> tail <a href='
    stripped = strip_markup(text)
    assert len(stripped) == len(text)
    assert stripped.index("Hello") == text.index("Hello")
    assert stripped.index("world") == text.index("world")
    assert stripped.index("tail") == text.index("tail")


def test_tokenize_with_offsets_points_into_original_text():
    text = '<a href="nav.html">Budget</a> Report <i>2011</i>'
    pairs = tokenize_with_offsets(text)
    assert [term for term, _ in pairs] == ["budget", "report", "2011"]
    for term, offset in pairs:
        assert text[offset : offset + len(term)].lower() == term


def test_tokenize_with_offsets_survives_offset_shifting_case_folds():
    # İ lower-cases to two characters under str.lower(); the offset
    # preserving fold leaves it alone so later offsets stay valid.
    text = "İstanbul report"
    pairs = tokenize_with_offsets(text)
    terms = dict(pairs)
    assert terms["report"] == text.index("report")


def test_tokenize_with_offsets_agrees_with_tokenize_text():
    text = '<p>The quick <b>brown</b> fox — and the lazy dog</p>'
    assert [term for term, _ in tokenize_with_offsets(text)] == tokenize_text(text)
