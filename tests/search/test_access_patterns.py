"""Tests for the sequential and query-log access patterns."""

import pytest

from repro.errors import SearchError
from repro.corpus import DocumentCollection
from repro.search import AccessPatterns, query_log_pattern, sequential_pattern


def test_sequential_pattern_wraps_to_length(gov_small):
    requests = sequential_pattern(gov_small, num_requests=55)
    assert len(requests) == 55
    assert requests[: len(gov_small)] == gov_small.doc_ids()
    assert requests[len(gov_small)] == gov_small.doc_ids()[0]


def test_sequential_pattern_empty_collection_raises():
    with pytest.raises(SearchError):
        sequential_pattern(DocumentCollection([]), 10)


def test_query_log_pattern_properties(gov_small):
    requests = query_log_pattern(gov_small, num_requests=200, num_queries=40, seed=1)
    assert len(requests) == 200
    valid = set(gov_small.doc_ids())
    assert all(doc_id in valid for doc_id in requests)
    # Query-log requests are not simply sequential.
    assert requests != sequential_pattern(gov_small, 200)


def test_query_log_pattern_is_skewed(gov_small):
    """Popular documents are requested repeatedly (ranked retrieval skew)."""
    requests = query_log_pattern(gov_small, num_requests=300, num_queries=60, seed=2)
    counts = {}
    for doc_id in requests:
        counts[doc_id] = counts.get(doc_id, 0) + 1
    assert max(counts.values()) > 300 / len(gov_small)


def test_access_patterns_bundle(gov_small):
    patterns = AccessPatterns(gov_small, num_requests=120, num_queries=30, seed=3)
    assert len(patterns.sequential) == 120
    assert len(patterns.query_log) == 120
    # The index is built lazily and shared.
    assert patterns.index is patterns.index
