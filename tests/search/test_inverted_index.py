"""Tests for the inverted index and BM25 ranking."""

import pytest

from repro.corpus import Document, DocumentCollection
from repro.errors import SearchError
from repro.search import InvertedIndex


@pytest.fixture()
def tiny_index():
    collection = DocumentCollection(
        [
            Document(0, "http://a.gov/0", b"compression of web collections with dictionaries"),
            Document(1, "http://a.gov/1", b"suffix array construction and pattern matching"),
            Document(2, "http://a.gov/2", b"web crawling frontier politeness"),
            Document(3, "http://a.gov/3", b"dictionaries dictionaries dictionaries compression"),
        ]
    )
    return InvertedIndex.build(collection)


def test_index_statistics(tiny_index):
    assert tiny_index.num_documents == 4
    assert tiny_index.num_terms > 5
    assert tiny_index.average_document_length > 0
    assert tiny_index.document_frequency("compression") == 2
    assert tiny_index.document_frequency("nonexistentterm") == 0


def test_postings_record_term_frequency(tiny_index):
    postings = {p.doc_id: p.term_frequency for p in tiny_index.postings("dictionaries")}
    assert postings[3] == 3
    assert postings[0] == 1


def test_search_ranks_matching_documents_first(tiny_index):
    results = tiny_index.search("compression dictionaries")
    assert results
    assert results[0].doc_id == 3  # repeats both query terms
    returned_ids = {r.doc_id for r in results}
    assert 0 in returned_ids
    assert 1 not in returned_ids  # shares no query term


def test_search_respects_top_k(tiny_index):
    assert len(tiny_index.search("web", top_k=1)) == 1


def test_search_unknown_terms_returns_empty(tiny_index):
    assert tiny_index.search("zzzz qqqq") == []


def test_search_empty_query(tiny_index):
    assert tiny_index.search("the and of") == []  # all stopwords


def test_search_invalid_top_k(tiny_index):
    with pytest.raises(SearchError):
        tiny_index.search("web", top_k=0)


def test_duplicate_document_rejected(tiny_index):
    with pytest.raises(SearchError):
        tiny_index.add_document(0, "again")


def test_scores_are_descending(tiny_index):
    results = tiny_index.search("web compression dictionaries")
    scores = [r.score for r in results]
    assert scores == sorted(scores, reverse=True)


def test_index_realistic_collection(gov_small):
    index = InvertedIndex.build(gov_small)
    assert index.num_documents == len(gov_small)
    results = index.search("information management program", top_k=10)
    assert len(results) <= 10
    for result in results:
        assert result.doc_id in set(gov_small.doc_ids())


def test_search_many(tiny_index):
    batches = tiny_index.search_many(["web", "compression"], top_k=2)
    assert len(batches) == 2
