"""The persistent posting-list index behind search serving.

What must hold, because the serving stack leans on it:

* the on-disk sidecar round-trips exactly — statistics, postings and
  rankings are identical before a write and after an open;
* corruption is *loud*: a flipped bit in any section raises
  :class:`~repro.errors.CorruptArchiveError`, truncation raises
  :class:`~repro.errors.StorageError`, never a silently wrong ranking;
* scoring agrees with :class:`repro.search.InvertedIndex` score-for-score
  (the sharded SEARCH path promises its merged ranking equals a single
  local index, which is only true if both ends compute identical floats);
* the global-stats mode makes per-shard scores equal the full-collection
  scores — the heart of the exact sharded fan-out;
* tie-breaking is deterministic (ascending doc id) across every ranked
  path: ``rank_scores``, ``InvertedIndex.search``/``search_many`` and
  ``PostingsStore.search``.
"""

from __future__ import annotations

import pytest

from repro.errors import CorruptArchiveError, SearchError, StorageError
from repro.search import (
    GlobalStats,
    InvertedIndex,
    PostingsStore,
    build_postings,
    index_sidecar_path,
    rank_scores,
    tokenize_text,
    write_postings,
)


def _documents(collection):
    return [(document.doc_id, document.text()) for document in collection]


def _queries(collection):
    """A few queries made of terms that actually occur in the collection."""
    counts = {}
    for document in collection:
        for term in set(tokenize_text(document.text())):
            counts[term] = counts.get(term, 0) + 1
    common = sorted(counts, key=lambda term: (-counts[term], term))
    rare = sorted(counts, key=lambda term: (counts[term], term))
    return [
        common[0],
        " ".join(common[:3]),
        f"{common[0]} {rare[0]}",
        " ".join(rare[:2]),
        f"{common[1]} {common[1]}",  # duplicated term scores twice
        "zzz-no-such-term-zzz",
    ]


@pytest.fixture(scope="module")
def built(gov_small):
    return build_postings(_documents(gov_small))


@pytest.fixture(scope="module")
def reference(gov_small):
    return InvertedIndex.build(gov_small)


# ----------------------------------------------------------------------
# Round-trip persistence
# ----------------------------------------------------------------------
def test_sidecar_path_naming(tmp_path):
    assert index_sidecar_path(tmp_path / "a.rlz") == tmp_path / "a.rlz.idx"


def test_write_open_round_trip(tmp_path, built, gov_small):
    path = write_postings(_documents(gov_small), tmp_path / "gov.idx")
    reopened = PostingsStore.open(path)
    assert reopened.num_documents == built.num_documents
    assert reopened.num_terms == built.num_terms
    assert reopened.total_doc_length == built.total_doc_length
    for document in gov_small:
        assert reopened.doc_length(document.doc_id) == built.doc_length(
            document.doc_id
        )
    for term in sorted(set(tokenize_text(next(iter(gov_small)).text()))):
        assert list(reopened.postings(term)) == list(built.postings(term))
    for query in _queries(gov_small):
        assert reopened.search(query, top_k=10) == built.search(query, top_k=10)


def test_bytes_and_str_documents_index_identically(tmp_path):
    text_docs = [(1, "the quick brown fox"), (2, "lazy dogs sleep")]
    byte_docs = [(doc_id, text.encode("utf-8")) for doc_id, text in text_docs]
    a = build_postings(text_docs)
    b = build_postings(byte_docs)
    assert a.search("quick fox dogs") == b.search("quick fox dogs")


def test_write_is_atomic_no_temp_left_behind(tmp_path, built):
    path = built.write(tmp_path / "atomic.idx")
    assert [p.name for p in tmp_path.iterdir()] == [path.name]


# ----------------------------------------------------------------------
# Corruption is loud
# ----------------------------------------------------------------------
def _flip(path, offset):
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 0xFF
    path.write_bytes(bytes(blob))


def test_flipped_header_bit_is_detected(tmp_path, built):
    path = built.write(tmp_path / "header.idx")
    _flip(path, len(b"RPIX0001") + 3)  # inside the counts block
    with pytest.raises(CorruptArchiveError):
        PostingsStore.open(path)


def test_flipped_postings_bit_is_detected(tmp_path, built):
    path = built.write(tmp_path / "postings.idx")
    head = len(b"RPIX0001") + 24 + 2 * 12 + 4
    _flip(path, head + 5)
    with pytest.raises(CorruptArchiveError):
        PostingsStore.open(path)


def test_flipped_doclens_bit_is_detected(tmp_path, built):
    path = built.write(tmp_path / "doclens.idx")
    _flip(path, path.stat().st_size - 2)
    with pytest.raises(CorruptArchiveError):
        PostingsStore.open(path)


def test_truncated_file_is_detected(tmp_path, built):
    path = built.write(tmp_path / "truncated.idx")
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) - 7])
    with pytest.raises((StorageError, CorruptArchiveError)):
        PostingsStore.open(path)


def test_not_an_index_is_detected(tmp_path):
    path = tmp_path / "garbage.idx"
    path.write_bytes(b"definitely not a postings index, far too short? no.")
    with pytest.raises(StorageError):
        PostingsStore.open(path)


# ----------------------------------------------------------------------
# Build validation
# ----------------------------------------------------------------------
def test_negative_doc_id_rejected():
    with pytest.raises(SearchError):
        build_postings([(-1, "nope")])


def test_duplicate_doc_id_rejected():
    with pytest.raises(SearchError):
        build_postings([(7, "once"), (7, "twice")])


def test_top_k_must_be_positive(built):
    with pytest.raises(SearchError):
        built.search("anything", top_k=0)


def test_empty_query_returns_nothing(built):
    assert built.search("") == []
    assert built.search("the of and") == []  # stopwords only


# ----------------------------------------------------------------------
# Scoring parity with the in-memory index
# ----------------------------------------------------------------------
def test_scores_equal_inverted_index_exactly(built, reference, gov_small):
    for query in _queries(gov_small):
        expected = reference.search(query, top_k=15)
        actual = built.search(query, top_k=15)
        assert [hit.doc_id for hit in actual] == [hit.doc_id for hit in expected]
        assert [hit.score for hit in actual] == [hit.score for hit in expected]


def test_term_stats_reports_shard_local_statistics(built, reference, gov_small):
    query = _queries(gov_small)[1]
    num_documents, total_length, frequencies = built.term_stats(query)
    assert num_documents == len(gov_small)
    assert total_length == built.total_doc_length
    assert frequencies == {
        term: reference.document_frequency(term)
        for term in set(tokenize_text(query))
    }


def test_global_stats_make_sharded_scores_exact(gov_small, reference):
    """Shard-local indexes + summed statistics == one big index, exactly."""
    documents = _documents(gov_small)
    shards = [
        build_postings(documents[index::3]) for index in range(3)
    ]
    for query in _queries(gov_small):
        # The stats-exchange leg a cluster client performs.
        num_documents = 0
        total_length = 0
        frequencies = {}
        for shard in shards:
            n, length, shard_frequencies = shard.term_stats(query)
            num_documents += n
            total_length += length
            for term, df in shard_frequencies.items():
                frequencies[term] = frequencies.get(term, 0) + df
        stats = GlobalStats(num_documents, total_length, frequencies)
        merged = []
        for shard in shards:
            merged.extend(shard.search(query, top_k=10, global_stats=stats))
        merged.sort(key=lambda hit: (-hit.score, hit.doc_id))
        expected = reference.search(query, top_k=10)
        assert [hit.doc_id for hit in merged[:10]] == [
            hit.doc_id for hit in expected
        ]
        assert [hit.score for hit in merged[:10]] == [
            hit.score for hit in expected
        ]


def test_hit_offset_is_first_occurrence_of_earliest_matching_term():
    store = build_postings(
        [
            (1, "alpha filler filler beta alpha"),
            (2, "filler filler beta"),
        ]
    )
    # doc 1 matches both terms: the anchor is alpha's first occurrence (0),
    # the minimum over matched-term first offsets.
    hits = {hit.doc_id: hit for hit in store.search("beta alpha")}
    assert hits[1].hit_offset == 0
    assert hits[2].hit_offset == len("filler filler ")


def test_hit_offsets_are_byte_offsets_in_unicode_text():
    text = "café zone éclair zone"
    store = build_postings([(1, text)])
    (posting,) = store.postings("zone")
    assert posting[2] == text.encode("utf-8").index(b"zone")


# ----------------------------------------------------------------------
# Tie-breaking determinism (regression: every ranked path agrees)
# ----------------------------------------------------------------------
TIED_TEXT = "identical content for every document here"


def test_rank_scores_breaks_ties_by_ascending_doc_id():
    ranked = rank_scores({9: 1.5, 3: 1.5, 7: 1.5, 1: 2.0}, top_k=3)
    assert [result.doc_id for result in ranked] == [1, 3, 7]


def test_inverted_index_tie_break_is_deterministic():
    index = InvertedIndex()
    for doc_id in (11, 3, 8, 5):  # insertion order must not matter
        index.add_document(doc_id, TIED_TEXT)
    results = index.search("identical content", top_k=4)
    assert [result.doc_id for result in results] == [3, 5, 8, 11]
    assert len({result.score for result in results}) == 1
    (many,) = index.search_many(["identical content"], top_k=4)
    assert many == results


def test_postings_store_tie_break_matches(tmp_path):
    store = build_postings([(doc_id, TIED_TEXT) for doc_id in (11, 3, 8, 5)])
    reopened = PostingsStore.open(store.write(tmp_path / "tied.idx"))
    for index in (store, reopened):
        results = index.search("identical content", top_k=4)
        assert [hit.doc_id for hit in results] == [3, 5, 8, 11]
        assert len({hit.score for hit in results}) == 1
