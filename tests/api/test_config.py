"""Tests for the ArchiveConfig dataclass tree."""

from __future__ import annotations

import pytest

from repro.api import (
    ArchiveConfig,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    ParallelSpec,
    ServeSpec,
)
from repro.errors import ConfigurationError
from repro.storage import LruCache, NullCache, SharedMemoryCache


def test_default_config_is_valid_and_paper_faithful():
    config = ArchiveConfig()
    assert config.dictionary.size is None  # auto-sized
    assert config.encoding.scheme == "ZZ"
    assert config.parallel.workers is None  # serial
    assert config.cache.tier == "none"  # cold decodes


def test_dictionary_auto_sizing():
    spec = DictionarySpec()
    assert spec.sized_for(100 * 1024 * 1024) == 1024 * 1024  # 1%
    assert spec.sized_for(1024) == 64 * 1024  # floor
    assert DictionarySpec(size=123).sized_for(10**9) == 123  # explicit wins


@pytest.mark.parametrize(
    "kwargs",
    [
        {"size": 0},
        {"size": -5},
        {"sample_size": 0},
        {"policy": "mystery"},
        {"prefix_fraction": 0.0},
        {"prefix_fraction": 1.5},
        {"jump_start": "turbo"},
    ],
)
def test_dictionary_spec_validation(kwargs):
    with pytest.raises(ConfigurationError):
        DictionarySpec(**kwargs)


def test_encoding_scheme_is_uppercased():
    assert EncodingSpec(scheme="zv").scheme == "ZV"
    with pytest.raises(ConfigurationError):
        EncodingSpec(scheme="")


@pytest.mark.parametrize(
    "kwargs",
    [{"workers": -1}, {"start_method": "thread"}],
)
def test_parallel_spec_validation(kwargs):
    with pytest.raises(ConfigurationError):
        ParallelSpec(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"tier": "disk"},
        {"tier": "lru"},  # needs capacity
        {"tier": "lru", "capacity": -2},
        {"tier": "none", "capacity": 8},
        {"tier": "shared", "capacity": 4, "slot_bytes": 0},
        {"tier": "lru", "capacity": 4, "name": "x"},  # name is shared-only
    ],
)
def test_cache_spec_validation(kwargs):
    with pytest.raises(ConfigurationError):
        CacheSpec(**kwargs)


def test_cache_spec_builds_each_tier():
    assert isinstance(CacheSpec().build_tier(), NullCache)
    assert isinstance(CacheSpec(tier="lru", capacity=3).build_tier(), LruCache)
    shared = CacheSpec(tier="shared", capacity=2, slot_bytes=512).build_tier()
    try:
        assert isinstance(shared, SharedMemoryCache)
        assert shared.slots == 2 and shared.slot_bytes == 512
    finally:
        shared.close()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"host": ""},
        {"port": -1},
        {"port": 70000},
        {"max_inflight": 0},
        {"max_frame_bytes": 100},
        {"drain_seconds": -1.0},
    ],
)
def test_serve_spec_validation(kwargs):
    with pytest.raises(ConfigurationError):
        ServeSpec(**kwargs)


def test_serve_spec_defaults_are_loopback_ephemeral():
    spec = ServeSpec()
    assert spec.host == "127.0.0.1"
    assert spec.port == 0
    assert spec.max_inflight > 0


def test_config_sections_are_type_checked():
    with pytest.raises(ConfigurationError):
        ArchiveConfig(dictionary={"size": 1024})  # type: ignore[arg-type]
    with pytest.raises(ConfigurationError):
        ArchiveConfig(cache="lru")  # type: ignore[arg-type]


def test_to_dict_from_dict_roundtrip():
    config = ArchiveConfig(
        dictionary=DictionarySpec(size=64 * 1024, sample_size=512, jump_start="compact"),
        encoding=EncodingSpec(scheme="UV"),
        parallel=ParallelSpec(workers=2, start_method="spawn", share_memory=True),
        cache=CacheSpec(tier="lru", capacity=16),
        serve=ServeSpec(host="0.0.0.0", port=8765, max_inflight=16),
    )
    rebuilt = ArchiveConfig.from_dict(config.to_dict())
    assert rebuilt == config


def test_from_dict_rejects_unknown_sections_and_fields():
    with pytest.raises(ConfigurationError):
        ArchiveConfig.from_dict({"caching": {}})
    with pytest.raises(ConfigurationError):
        ArchiveConfig.from_dict({"encoding": {"schema": "ZZ"}})


def test_from_dict_accepts_partial_and_spec_instances():
    config = ArchiveConfig.from_dict({"encoding": EncodingSpec(scheme="ZV")})
    assert config.encoding.scheme == "ZV"
    assert config.cache == CacheSpec()
