"""Tests for the asyncio serving front: coalescing, concurrency, lifecycle."""

from __future__ import annotations

import asyncio

import pytest

from repro.api import (
    ArchiveConfig,
    AsyncRlzArchive,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    RlzArchive,
)
from repro.errors import StorageError, StoreClosedError


def _config(cache: CacheSpec | None = None) -> ArchiveConfig:
    return ArchiveConfig(
        dictionary=DictionarySpec(size=32 * 1024, sample_size=512),
        encoding=EncodingSpec(scheme="ZV"),
        cache=cache or CacheSpec(),
    )


@pytest.fixture()
def archive_path(tmp_path, gov_small):
    path = tmp_path / "async.rlz"
    RlzArchive.build(gov_small, _config(), path).close()
    return path


def test_get_and_get_many_roundtrip(archive_path, gov_small):
    async def main():
        async with AsyncRlzArchive.open(archive_path, _config()) as front:
            doc_ids = front.archive.doc_ids()
            document = await front.get(doc_ids[0])
            assert document == gov_small.document_by_id(doc_ids[0]).content
            batch = await front.get_many(doc_ids)
            assert batch == [gov_small.document_by_id(d).content for d in doc_ids]

    asyncio.run(main())


def test_duplicate_inflight_gets_are_coalesced(archive_path):
    """N concurrent gets for one document must decode once: the followers
    await the leader's future instead of re-entering the store."""

    async def main():
        front = AsyncRlzArchive.open(archive_path, _config())  # no cache tier
        doc_id = front.archive.doc_ids()[0]
        calls = []
        real_get = front.archive.get

        def counting_get(requested_id):
            calls.append(requested_id)
            return real_get(requested_id)

        front._archive.get = counting_get  # count what reaches the archive
        documents = await asyncio.gather(*(front.get(doc_id) for _ in range(10)))
        assert len(set(documents)) == 1
        assert calls == [doc_id]  # one decode for ten requests
        assert front.stats()["async_coalesced"] == 9
        assert front.stats()["async_requests"] == 10

        # A later (non-overlapping) request decodes again: coalescing is
        # about in-flight duplicates, not a cache.
        await front.get(doc_id)
        assert calls == [doc_id, doc_id]
        await front.close()

    asyncio.run(main())


def test_concurrent_get_many_is_byte_identical(archive_path, gov_small):
    """Several overlapping concurrent get_many batches must all come back
    byte-identical to the corpus (file-handle reads are serialized)."""

    async def main():
        cache = CacheSpec(tier="lru", capacity=8)
        async with AsyncRlzArchive.open(
            archive_path, _config(cache=cache), max_workers=4
        ) as front:
            doc_ids = front.archive.doc_ids()
            batches = [doc_ids, list(reversed(doc_ids)), doc_ids[::2], doc_ids[1::2]]
            results = await asyncio.gather(
                *(front.get_many(batch) for batch in batches for _ in range(3))
            )
            expected = {
                doc_id: gov_small.document_by_id(doc_id).content for doc_id in doc_ids
            }
            for batch, result in zip(
                [batch for batch in batches for _ in range(3)], results
            ):
                assert result == [expected[doc_id] for doc_id in batch]

    asyncio.run(main())


def test_gather_fans_out_with_coalescing(archive_path, gov_small):
    async def main():
        async with AsyncRlzArchive.open(archive_path, _config()) as front:
            doc_ids = front.archive.doc_ids()
            log = [doc_ids[0], doc_ids[1], doc_ids[0], doc_ids[2], doc_ids[0]]
            documents = await front.gather(log)
            assert documents == [
                gov_small.document_by_id(doc_id).content for doc_id in log
            ]
            assert front.stats()["async_coalesced"] >= 2

    asyncio.run(main())


def test_errors_propagate_to_leader_and_followers(archive_path):
    async def main():
        async with AsyncRlzArchive.open(archive_path, _config()) as front:
            missing = max(front.archive.doc_ids()) + 1000
            results = await asyncio.gather(
                *(front.get(missing) for _ in range(3)), return_exceptions=True
            )
            assert len(results) == 3
            assert all(isinstance(result, StorageError) for result in results)
            assert not front._inflight  # no stuck futures

    asyncio.run(main())


def test_cancelling_one_client_does_not_poison_the_shared_decode(archive_path):
    """The decode future belongs to the request: cancelling the client that
    started it must leave concurrent clients with the real result."""

    async def main():
        async with AsyncRlzArchive.open(archive_path, _config()) as front:
            doc_id = front.archive.doc_ids()[0]
            real_get = front.archive.get
            started = asyncio.Event()
            loop = asyncio.get_running_loop()

            def slow_get(requested_id):
                loop.call_soon_threadsafe(started.set)
                import time

                time.sleep(0.05)
                return real_get(requested_id)

            front._archive.get = slow_get
            leader = asyncio.ensure_future(front.get(doc_id))
            await started.wait()  # the leader's decode is in flight
            follower = asyncio.ensure_future(front.get(doc_id))
            await asyncio.sleep(0)  # let the follower coalesce
            leader.cancel()
            with pytest.raises(asyncio.CancelledError):
                await leader
            assert await follower == real_get(doc_id)
            assert front.stats()["async_coalesced"] == 1

    asyncio.run(main())


def test_cancelled_inflight_future_is_not_reused(archive_path):
    """A cancelled decode future must not satisfy (or poison) later
    requests: get() evicts it from the coalescing map and decodes fresh.

    Regression test: with a saturated pool, a queued decode's executor
    future is cancellable (e.g. by a timeout path); before the fix a new
    request could coalesce onto the cancelled future and fail spuriously.
    """

    async def main():
        async with AsyncRlzArchive.open(
            archive_path, _config(), max_workers=1
        ) as front:
            doc_ids = front.archive.doc_ids()
            release = asyncio.Event()
            real_get = front.archive.get
            calls = []

            def gated_get(requested_id):
                calls.append(requested_id)
                if requested_id == doc_ids[0]:
                    import time

                    while not release.is_set():
                        time.sleep(0.005)
                return real_get(requested_id)

            front._archive.get = gated_get
            # Saturate the single worker, then queue a second decode whose
            # executor future is still cancellable.
            blocker = asyncio.ensure_future(front.get(doc_ids[0]))
            while not calls:
                await asyncio.sleep(0.005)
            victim = asyncio.ensure_future(front.get(doc_ids[1]))
            await asyncio.sleep(0.01)  # let the victim enter the map
            inner = front._inflight[doc_ids[1]]
            assert inner.cancel()  # simulate a timeout path cancelling it
            with pytest.raises(asyncio.CancelledError):
                await victim
            # A new request must not coalesce onto the cancelled future: it
            # evicts the entry and starts a fresh decode.
            retry = asyncio.ensure_future(front.get(doc_ids[1]))
            await asyncio.sleep(0)
            assert front._inflight.get(doc_ids[1]) is not inner
            release.set()  # un-gate the worker so both decodes can run
            assert await retry == real_get(doc_ids[1])
            assert await blocker == real_get(doc_ids[0])
            assert not front._inflight

    asyncio.run(main())


def test_done_callback_does_not_pop_a_replacement_future(archive_path):
    """_on_done must only remove its *own* map entry: after a cancelled
    future is replaced by a fresh decode, the stale callback firing late
    must leave the replacement coalescible."""

    async def main():
        async with AsyncRlzArchive.open(archive_path, _config()) as front:
            doc_id = front.archive.doc_ids()[0]
            # Forge the race directly: a cancelled future sits in the map
            # with its done-callback not yet run.
            loop = asyncio.get_running_loop()
            stale = loop.create_future()
            stale.cancel()
            front._inflight[doc_id] = stale
            document = await front.get(doc_id)  # evicts the cancelled entry
            assert document == front.archive.get(doc_id)
            # Replay the stale callback late: the map entry for doc_id (if
            # any) must not be popped by it.
            replacement = loop.create_future()
            front._inflight[doc_id] = replacement
            if front._inflight.get(doc_id) is stale:  # mirrors _on_done's guard
                del front._inflight[doc_id]
            assert front._inflight[doc_id] is replacement
            del front._inflight[doc_id]

    asyncio.run(main())


def test_timeout_on_one_waiter_leaves_the_decode_usable(archive_path):
    """asyncio.wait_for cancelling a waiting client must not cancel the
    shared decode: a concurrent waiter still gets the document."""

    async def main():
        async with AsyncRlzArchive.open(archive_path, _config()) as front:
            doc_id = front.archive.doc_ids()[0]
            real_get = front.archive.get
            started = asyncio.Event()
            loop = asyncio.get_running_loop()

            def slow_get(requested_id):
                loop.call_soon_threadsafe(started.set)
                import time

                time.sleep(0.1)
                return real_get(requested_id)

            front._archive.get = slow_get
            impatient = asyncio.ensure_future(
                asyncio.wait_for(front.get(doc_id), timeout=0.01)
            )
            await started.wait()
            patient = asyncio.ensure_future(front.get(doc_id))
            await asyncio.sleep(0)
            with pytest.raises(asyncio.TimeoutError):
                await impatient
            assert await patient == real_get(doc_id)
            assert not front._inflight

    asyncio.run(main())


def test_close_is_idempotent_and_fences_requests(archive_path):
    async def main():
        front = AsyncRlzArchive.open(archive_path, _config())
        doc_id = front.archive.doc_ids()[0]
        await front.get(doc_id)
        await front.close()
        await front.close()
        assert front.closed and front.archive.closed
        with pytest.raises(StoreClosedError):
            await front.get(doc_id)
        with pytest.raises(StoreClosedError):
            await front.get_many([doc_id])

    asyncio.run(main())


def test_stats_merge_front_and_archive_counters(archive_path):
    async def main():
        cache = CacheSpec(tier="lru", capacity=8)
        async with AsyncRlzArchive.open(archive_path, _config(cache=cache)) as front:
            doc_ids = front.archive.doc_ids()
            await front.gather(doc_ids[:4] + doc_ids[:4])
            stats = front.stats()
            assert stats["async_requests"] == 8
            assert stats["async_inflight"] == 0
            assert stats["cache_capacity"] == 8
            assert stats["documents"] >= 4

    asyncio.run(main())
