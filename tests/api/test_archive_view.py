"""ArchiveView conformance: local, socket and cluster views, one battery.

Every test in this module runs against each ``ArchiveView``
implementation: a local :class:`RlzArchive`, an :class:`RlzClient`
talking to a live server over a socket, a :class:`ClusterClient` fanning
out over two replica servers — that same cluster *degraded*, with one of
its two shards killed before the battery runs (the failover path) — a
*partitioned* four-shard fleet where each server holds only its arc of
doc-id space — and an :class:`AsyncClusterClient` over that same fleet,
driven through a thread bridge.  The point of the ``ArchiveView`` design
is that all of them are indistinguishable: byte-identical documents,
identical ordering guarantees, identical error *types*.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.api import (
    ArchiveConfig,
    ArchiveView,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    RlzArchive,
)
from repro.errors import StorageError, StoreClosedError
from repro.serve import (
    AsyncClusterClient,
    BackgroundServer,
    ClusterClient,
    RlzClient,
    build_partitioned_archives,
)


def _config(shards: int = 1) -> ArchiveConfig:
    from repro.api import PartitionSpec

    return ArchiveConfig(
        dictionary=DictionarySpec(size=32 * 1024, sample_size=512),
        encoding=EncodingSpec(scheme="ZV"),
        cache=CacheSpec(tier="lru", capacity=16),
        partition=PartitionSpec(shards=shards),
    )


@pytest.fixture(scope="module")
def view_archive(tmp_path_factory, gov_small):
    path = tmp_path_factory.mktemp("views") / "conformance.rlz"
    RlzArchive.build(gov_small, _config(), path).close()
    return path


@pytest.fixture(scope="module")
def partitioned_shards(tmp_path_factory, gov_small):
    """The same collection split 4 ways: each container holds only its arc."""
    directory = tmp_path_factory.mktemp("views-partitioned")
    return build_partitioned_archives(gov_small, _config(shards=4), directory)


def _start_cluster(view_archive, replicas=2):
    servers = [BackgroundServer(view_archive, _config()) for _ in range(replicas)]
    endpoints = []
    for server in servers:
        host, port = server.start()
        endpoints.append(f"{host}:{port}")
    return servers, endpoints


def _start_partitioned(partitioned_shards):
    """One server per shard container; ``ringid@host:port`` serving labels."""
    servers, endpoints = [], []
    for ring_id, path in partitioned_shards.items():
        server = BackgroundServer(path, _config())
        host, port = server.start()
        servers.append(server)
        endpoints.append(f"{ring_id}@{host}:{port}")
    return servers, endpoints


class _AsyncViewBridge:
    """Drive an :class:`AsyncClusterClient` from the synchronous battery.

    A dedicated event-loop thread owns the client; every view method
    submits one coroutine with ``run_coroutine_threadsafe`` and blocks on
    the result, so exceptions (``StorageError``, ``StoreClosedError``)
    surface with their real types, exactly as the sync views raise them.
    """

    def __init__(self, endpoints):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="async-view-bridge", daemon=True
        )
        self._thread.start()
        self._client = AsyncClusterClient(endpoints, retries=0, retry_delay=0.01)
        self._stopped = False

    def _run(self, coroutine):
        return asyncio.run_coroutine_threadsafe(coroutine, self._loop).result(30)

    def get(self, doc_id):
        return self._run(self._client.get(doc_id))

    def get_many(self, doc_ids):
        return self._run(self._client.get_many(doc_ids))

    def iter_documents(self):
        iterator = self._client.iter_documents()  # async generator: no await
        while True:
            try:
                yield self._run(iterator.__anext__())
            except StopAsyncIteration:
                return

    def doc_ids(self):
        return self._run(self._client.doc_ids())

    def __len__(self):
        return len(self.doc_ids())

    def stats(self):
        return self._run(self._client.stats())

    @property
    def closed(self):
        return self._client.closed

    def close(self):
        if not self._stopped:
            self._run(self._client.close())
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._loop.close()
            self._stopped = True


@pytest.fixture(
    scope="module",
    params=[
        "local",
        "socket",
        "cluster",
        "cluster-degraded",
        "partitioned",
        "async-cluster",
    ],
)
def view(request, view_archive, partitioned_shards):
    """The same archive behind every ArchiveView implementation."""
    if request.param == "local":
        archive = RlzArchive.open(view_archive, _config())
        yield archive
        archive.close()
    elif request.param == "socket":
        with BackgroundServer(view_archive, _config()) as server:
            client = RlzClient(*server.address)
            yield client
            client.close()
    elif request.param in ("partitioned", "async-cluster"):
        servers, endpoints = _start_partitioned(partitioned_shards)
        if request.param == "partitioned":
            client = ClusterClient(endpoints, retries=0, retry_delay=0.01)
        else:
            client = _AsyncViewBridge(endpoints)
        try:
            yield client
        finally:
            client.close()
            for server in servers:
                try:
                    server.stop()
                except Exception:
                    pass
    else:
        servers, endpoints = _start_cluster(view_archive)
        client = ClusterClient(
            endpoints, retries=0, retry_delay=0.01, breaker_cooldown=0.2
        )
        if request.param == "cluster-degraded":
            servers[1].stop()  # one shard dead: everything fails over
        try:
            yield client
        finally:
            client.close()
            for server in servers:
                try:
                    server.stop()
                except Exception:
                    pass


def test_implements_archive_view(view):
    assert isinstance(view, ArchiveView)


def test_get_returns_byte_identical_documents(view, gov_small):
    for document in gov_small:
        assert view.get(document.doc_id) == document.content


def test_get_many_preserves_order_and_duplicates(view, gov_small):
    doc_ids = view.doc_ids()
    request = list(reversed(doc_ids)) + doc_ids[:3] + [doc_ids[0]] * 2
    result = view.get_many(request)
    assert result == [gov_small.document_by_id(d).content for d in request]


def test_get_many_empty_request(view):
    assert view.get_many([]) == []


def test_iter_documents_scans_in_store_order(view, gov_small):
    items = list(view.iter_documents())
    assert [doc_id for doc_id, _ in items] == view.doc_ids()
    assert dict(items) == {d.doc_id: d.content for d in gov_small}


def test_doc_ids_and_len(view, gov_small):
    assert len(view) == len(gov_small)
    assert sorted(view.doc_ids()) == sorted(d.doc_id for d in gov_small)


def test_missing_document_raises_storage_error(view):
    with pytest.raises(StorageError):
        view.get(max(view.doc_ids()) + 12345)


def test_missing_document_in_batch_raises_storage_error(view):
    doc_ids = view.doc_ids()
    with pytest.raises(StorageError):
        view.get_many([doc_ids[0], max(doc_ids) + 12345])


def test_stats_is_a_flat_numeric_mapping(view):
    view.get(view.doc_ids()[0])
    stats = view.stats()
    assert isinstance(stats, dict)
    assert stats  # never empty after a request
    for key, value in stats.items():
        assert isinstance(key, str)
        assert isinstance(value, (int, float)), key


@pytest.mark.parametrize("kind", ["local", "socket", "cluster"])
def test_close_is_idempotent_and_fences(view_archive, kind):
    """Run last with private fixtures: closing the shared view would poison
    the module-scoped battery above."""
    if kind == "local":
        target = RlzArchive.open(view_archive, _config())
        cleanup = lambda: None  # noqa: E731 - nothing outside the view
    elif kind == "socket":
        server = BackgroundServer(view_archive, _config())
        server.start()
        target = RlzClient(*server.address)
        cleanup = server.stop
    else:
        servers, endpoints = _start_cluster(view_archive)
        target = ClusterClient(endpoints, retries=0, retry_delay=0.01)

        def cleanup():
            for background in servers:
                background.stop()
    try:
        doc_id = target.doc_ids()[0]
        assert target.get(doc_id)
        assert not target.closed
        target.close()
        target.close()
        assert target.closed
        with pytest.raises(StoreClosedError):
            target.get(doc_id)
        with pytest.raises(StoreClosedError):
            target.get_many([doc_id])
    finally:
        cleanup()
