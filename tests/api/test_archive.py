"""Tests for the RlzArchive facade: build/open round-trips, stats, lifecycle."""

from __future__ import annotations

import pytest

from repro.api import ArchiveConfig, CacheSpec, DictionarySpec, EncodingSpec, RlzArchive
from repro.core import PAPER_SCHEMES, DictionaryConfig, RlzCompressor
from repro.corpus import Document
from repro.errors import ConfigurationError, StoreClosedError
from repro.storage import RlzStore


def _config(scheme: str = "ZV", cache: CacheSpec | None = None) -> ArchiveConfig:
    return ArchiveConfig(
        dictionary=DictionarySpec(size=32 * 1024, sample_size=512),
        encoding=EncodingSpec(scheme=scheme),
        cache=cache or CacheSpec(),
    )


@pytest.mark.parametrize("scheme", sorted(PAPER_SCHEMES))
def test_build_open_roundtrips_every_codec(tmp_path, gov_small, scheme):
    """build → open → get/get_many must return byte-identical documents for
    every pair-coding scheme."""
    path = tmp_path / f"archive-{scheme}.rlz"
    built = RlzArchive.build(gov_small, _config(scheme), path)
    built.close()

    with RlzArchive.open(path, _config(scheme)) as archive:
        assert archive.scheme_name == scheme
        doc_ids = archive.doc_ids()
        assert doc_ids == gov_small.doc_ids()
        for doc_id in doc_ids[:5]:
            assert archive.get(doc_id) == gov_small.document_by_id(doc_id).content
        batch = archive.get_many(doc_ids)
        assert batch == [gov_small.document_by_id(d).content for d in doc_ids]


def test_build_matches_legacy_pipeline_bytes(tmp_path, gov_small):
    """The facade writes the same container the legacy dance writes."""
    legacy_path = tmp_path / "legacy.rlz"
    compressor = RlzCompressor(
        dictionary_config=DictionaryConfig(size=32 * 1024, sample_size=512),
        scheme="ZV",
    )
    RlzStore.write(compressor.compress(gov_small), legacy_path)

    facade_path = tmp_path / "facade.rlz"
    RlzArchive.build(gov_small, _config("ZV"), facade_path).close()

    assert facade_path.read_bytes() == legacy_path.read_bytes()


def test_build_accepts_raw_bytes_and_tuples_and_documents(tmp_path):
    payloads = [b"alpha " * 400, b"beta " * 400, b"gamma " * 400]
    path = tmp_path / "raw.rlz"
    with RlzArchive.build(payloads, path=path) as archive:
        assert archive.doc_ids() == [0, 1, 2]
        assert archive.get(1) == payloads[1]

    pairs = [(10, "ten " * 500), (20, b"twenty " * 500)]
    path2 = tmp_path / "pairs.rlz"
    with RlzArchive.build(pairs, path=path2) as archive:
        assert archive.doc_ids() == [10, 20]
        assert archive.get(10) == b"ten " * 500

    documents = [
        Document(doc_id=5, url="http://e.com/5", content=b"five " * 500),
    ]
    path3 = tmp_path / "docs.rlz"
    with RlzArchive.build(documents, path=path3) as archive:
        assert archive.get(5) == b"five " * 500


def test_build_rejects_bad_sources(tmp_path):
    with pytest.raises(ConfigurationError):
        RlzArchive.build([], path=tmp_path / "empty.rlz")
    with pytest.raises(ConfigurationError):
        RlzArchive.build(b"one document", path=tmp_path / "single.rlz")
    with pytest.raises(ConfigurationError):
        RlzArchive.build([object()], path=tmp_path / "bad.rlz")
    with pytest.raises(ConfigurationError):
        RlzArchive.build([(1, b"x", b"y")], path=tmp_path / "triple.rlz")
    with pytest.raises(ConfigurationError):
        RlzArchive.build([b"doc " * 300])  # no path


def test_per_request_stats(tmp_path, gov_small):
    path = tmp_path / "stats.rlz"
    cache = CacheSpec(tier="lru", capacity=8)
    with RlzArchive.build(gov_small, _config(cache=cache), path) as archive:
        doc_ids = archive.doc_ids()
        assert archive.last_request is None

        document = archive.get(doc_ids[0])
        request = archive.last_request
        assert request.operation == "get"
        assert request.documents == 1
        assert request.bytes_served == len(document)
        assert request.cache_misses == 1 and request.cache_hits == 0
        assert request.seconds >= 0.0

        archive.get(doc_ids[0])  # cache hit now
        assert archive.last_request.cache_hits == 1

        batch = archive.get_many(doc_ids[:4])
        request = archive.last_request
        assert request.operation == "get_many"
        assert request.documents == 4
        assert request.bytes_served == sum(len(d) for d in batch)

        stats = archive.stats()
        assert stats["requests"] == 3
        assert stats["documents"] == 6
        assert stats["cache_hits"] >= 2


def test_iter_documents_records_stats_on_completion(tmp_path, gov_small):
    path = tmp_path / "iter.rlz"
    with RlzArchive.build(gov_small, _config(), path) as archive:
        total = sum(len(document) for _, document in archive.iter_documents())
        assert total == gov_small.total_size
        request = archive.last_request
        assert request.operation == "iter_documents"
        assert request.documents == len(gov_small)
        assert request.bytes_served == total


def test_close_idempotent_and_get_after_close(tmp_path, gov_small):
    path = tmp_path / "closed.rlz"
    archive = RlzArchive.build(gov_small, _config(), path)
    doc_id = archive.doc_ids()[0]
    archive.close()
    archive.close()
    assert archive.closed
    with pytest.raises(StoreClosedError):
        archive.get(doc_id)
    with pytest.raises(StoreClosedError):
        archive.get_many([doc_id])


def test_failed_open_releases_the_cache_tier(tmp_path):
    """Opening a missing archive with a shared tier must not leak the
    freshly created shared-memory segment."""
    import uuid

    from multiprocessing import shared_memory

    from repro.errors import StorageError

    name = f"rlza-{uuid.uuid4().hex[:12]}"
    config = ArchiveConfig(
        cache=CacheSpec(tier="shared", capacity=4, slot_bytes=1024, name=name)
    )
    with pytest.raises((StorageError, OSError)):
        RlzArchive.open(tmp_path / "does-not-exist.rlz", config)
    with pytest.raises(FileNotFoundError):
        segment = shared_memory.SharedMemory(name=name)
        segment.close()  # pragma: no cover - only reached on a leak


def test_shared_cache_tier_crosses_archive_handles(tmp_path, gov_small):
    """Two archive handles (as two reader processes would) share one decode
    cache through the shared tier: the second handle's first get is a hit."""
    import uuid

    path = tmp_path / "shared.rlz"
    name = f"rlza-{uuid.uuid4().hex[:12]}"
    config = _config(
        cache=CacheSpec(tier="shared", capacity=8, slot_bytes=64 * 1024, name=name)
    )
    RlzArchive.build(gov_small, _config(), path).close()

    first = RlzArchive.open(path, config)
    doc_id = first.doc_ids()[0]
    document = first.get(doc_id)

    second = RlzArchive.open(path, config)
    assert second.get(doc_id) == document
    info = second.cache_info()
    assert info["hits"] == 1 and info["misses"] == 0
    second.close()
    first.close()
