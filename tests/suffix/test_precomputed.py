"""Tests for the shared-state attach path (``SuffixArray.from_precomputed``)."""

import numpy as np
import pytest

from repro.suffix import SuffixArray


@pytest.fixture(scope="module")
def built():
    text = b"the quick brown fox jumps over the lazy dog \x00 tail" * 6
    original = SuffixArray(text)
    original.prepare()
    return text, original


def test_shared_state_roundtrip_produces_identical_parses(built):
    text, original = built
    state = original.shared_state()
    clone = SuffixArray.from_precomputed(
        text,
        state["sa"],
        position_keys=state.get("position_keys"),
        level0_keys=state.get("level0_keys"),
    )
    queries = [
        b"the quick brown fox",
        b"lazy dog \x00 tail",
        b"completely absent bytes XYZ",
        b"",
        text[: 40],
    ]
    for query in queries:
        assert clone.factorize_stream(query) == original.factorize_stream(query)
        assert clone.longest_match(query) == original.longest_match(query)


def test_from_precomputed_does_not_run_construction(built, monkeypatch):
    text, original = built
    state = original.shared_state()

    def _boom(*args, **kwargs):
        raise AssertionError("construction must not run on the attach path")

    import repro.suffix.suffix_array as suffix_array_module

    monkeypatch.setattr(suffix_array_module, "suffix_array_doubling", _boom)
    monkeypatch.setattr(suffix_array_module, "sais", _boom)
    clone = SuffixArray.from_precomputed(text, state["sa"], algorithm="shared:test")
    assert clone.algorithm == "shared:test"
    assert clone.factorize_stream(b"the quick") == original.factorize_stream(b"the quick")


def test_from_precomputed_reuses_injected_arrays(built):
    text, original = built
    state = original.shared_state()
    clone = SuffixArray.from_precomputed(
        text,
        state["sa"],
        position_keys=state["position_keys"],
        level0_keys=state["level0_keys"],
    )
    clone._ensure_keys()
    assert clone._position_keys is state["position_keys"]
    assert clone._level_keys[0] is state["level0_keys"]


def test_from_precomputed_accepts_read_only_views(built):
    text, original = built
    state = original.shared_state()
    sa = state["sa"].copy()
    sa.flags.writeable = False
    position_keys = state["position_keys"].copy()
    position_keys.flags.writeable = False
    clone = SuffixArray.from_precomputed(text, sa, position_keys=position_keys)
    assert clone.factorize_stream(b"fox jumps") == original.factorize_stream(b"fox jumps")


def test_from_precomputed_validates_lengths(built):
    text, original = built
    state = original.shared_state()
    with pytest.raises(ValueError):
        SuffixArray.from_precomputed(text, state["sa"][:-1])
    with pytest.raises(ValueError):
        SuffixArray.from_precomputed(
            text, state["sa"], position_keys=state["position_keys"][:-1]
        )
    with pytest.raises(ValueError):
        SuffixArray.from_precomputed(
            text, state["sa"], level0_keys=state["level0_keys"][:-1]
        )
    with pytest.raises(TypeError):
        SuffixArray.from_precomputed("not bytes", state["sa"])


def test_jump_mode_validation():
    with pytest.raises(ValueError):
        SuffixArray(b"abc", jump_start="warp")
    assert SuffixArray(b"abc", jump_start=True).jump_mode == "auto"
    assert SuffixArray(b"abc", jump_start=False).jump_mode == "off"
    assert SuffixArray(b"abc", jump_start="COMPACT").jump_mode == "compact"
