"""Property-based tests for the suffix-array substrate."""

from hypothesis import given, settings, strategies as st

from repro.suffix import SuffixArray, suffix_array_doubling
from repro.suffix.sais import sais
from repro.suffix.verify import is_valid_suffix_array


texts = st.binary(min_size=0, max_size=300)
small_texts = st.binary(min_size=1, max_size=120)


@given(texts)
@settings(max_examples=60, deadline=None)
def test_doubling_always_produces_valid_suffix_array(text):
    assert is_valid_suffix_array(text, suffix_array_doubling(text))


@given(small_texts)
@settings(max_examples=40, deadline=None)
def test_sais_agrees_with_doubling(text):
    assert sais(text) == suffix_array_doubling(text).tolist()


@given(small_texts, st.binary(min_size=0, max_size=120))
@settings(max_examples=40, deadline=None)
def test_longest_match_is_valid_and_maximal(dictionary, query):
    """longest_match must return a true occurrence, and a maximal one."""
    sa = SuffixArray(dictionary, accelerated=True)
    position, length = sa.longest_match(query, 0)
    # The returned match must be an actual substring match.
    assert dictionary[position : position + length] == query[:length]
    # It must be maximal: no occurrence of query[:length + 1] exists.
    if length < len(query):
        assert dictionary.find(query[: length + 1]) == -1


@given(small_texts, st.binary(min_size=0, max_size=120))
@settings(max_examples=40, deadline=None)
def test_accelerated_and_faithful_find_same_length(dictionary, query):
    fast = SuffixArray(dictionary, accelerated=True)
    slow = SuffixArray(dictionary, accelerated=False)
    assert fast.longest_match(query, 0)[1] == slow.longest_match(query, 0)[1]


@given(small_texts, st.binary(min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_count_matches_bruteforce(text, pattern):
    sa = SuffixArray(text)
    expected = sum(
        1 for i in range(len(text) - len(pattern) + 1) if text[i : i + len(pattern)] == pattern
    )
    assert sa.count(pattern) == expected
    assert sorted(sa.find_all(pattern)) == [
        i for i in range(len(text) - len(pattern) + 1) if text[i : i + len(pattern)] == pattern
    ]
