"""Tests for the prefix-doubling suffix array construction."""

import random

import numpy as np
import pytest

from repro.suffix.doubling import suffix_array_doubling
from repro.suffix.sais import sais
from repro.suffix.verify import is_valid_suffix_array, naive_suffix_array


def test_empty_input():
    assert suffix_array_doubling(b"").tolist() == []


def test_single_character():
    assert suffix_array_doubling(b"x").tolist() == [0]


def test_banana():
    assert suffix_array_doubling(b"banana").tolist() == naive_suffix_array(b"banana")


def test_all_same_character():
    text = b"z" * 40
    assert suffix_array_doubling(text).tolist() == list(range(39, -1, -1))


def test_returns_int64_array():
    result = suffix_array_doubling(b"hello world")
    assert isinstance(result, np.ndarray)
    assert result.dtype == np.int64


def test_numpy_array_input():
    data = np.array([5, 3, 5, 1, 2], dtype=np.int64)
    expected = naive_suffix_array(bytes(data.tolist()))
    assert suffix_array_doubling(data).tolist() == expected


def test_rejects_negative_symbols():
    with pytest.raises(ValueError):
        suffix_array_doubling(np.array([1, -1], dtype=np.int64))


@pytest.mark.parametrize("seed", range(10))
def test_agrees_with_sais_on_random_input(seed):
    rng = random.Random(seed)
    alphabet = [b"ab", b"abcd", bytes(range(256))][seed % 3]
    text = bytes(rng.choice(alphabet) for _ in range(rng.randint(1, 400)))
    assert suffix_array_doubling(text).tolist() == sais(text)


@pytest.mark.parametrize("seed", range(5))
def test_valid_on_random_binary(seed):
    rng = random.Random(200 + seed)
    text = bytes(rng.randrange(256) for _ in range(rng.randint(1, 500)))
    assert is_valid_suffix_array(text, suffix_array_doubling(text))


def test_highly_repetitive_input():
    text = b"abab" * 100 + b"b"
    assert is_valid_suffix_array(text, suffix_array_doubling(text))
