"""Tests for the SuffixArray facade (refine, longest_match, queries, LCP)."""

import numpy as np
import pytest

from repro.suffix import SuffixArray, SuffixInterval
from repro.suffix.verify import naive_suffix_array


@pytest.fixture(scope="module")
def paper_sa():
    """Suffix array over the paper's Table 1 dictionary d = cabbaabba."""
    return SuffixArray(b"cabbaabba")


def test_rejects_non_bytes():
    with pytest.raises(TypeError):
        SuffixArray("not bytes")  # type: ignore[arg-type]


def test_rejects_unknown_algorithm():
    with pytest.raises(ValueError):
        SuffixArray(b"abc", algorithm="bogus")


def test_len_and_getitem(paper_sa):
    assert len(paper_sa) == 9
    assert sorted(paper_sa[i] for i in range(9)) == list(range(9))


def test_matches_naive_order(paper_sa):
    assert paper_sa.array.tolist() == naive_suffix_array(b"cabbaabba")


def test_suffix_accessor(paper_sa):
    rank_of_full_text = paper_sa.array.tolist().index(0)
    assert paper_sa.suffix(rank_of_full_text) == b"cabbaabba"
    assert paper_sa.suffix(rank_of_full_text, limit=3) == b"cab"


# ----------------------------------------------------------------------
# Refine (the paper's worked example, Table 1)
# ----------------------------------------------------------------------
def test_refine_follows_paper_example(paper_sa):
    """Searching x = bbaancabb with successive Refine calls (Table 1).

    After matching ``b`` the interval covers the four ``b...`` suffixes
    (the paper's (5, 8) in 1-based ranks); after ``bb`` the two ``bb...``
    suffixes; after ``bba`` still both (``bba`` and ``bbaabba``); after
    ``bbaa`` only ``bbaabba``; the fifth character ``n`` does not occur in
    the dictionary so the interval becomes invalid, exactly as the final
    ``-1`` column of the paper's table shows.  Bounds here are 0-based.
    """
    x = b"bbaancabb"
    interval = paper_sa.full_interval()
    expected = [(4, 7), (6, 7), (6, 7), (7, 7)]
    for offset in range(4):
        interval = paper_sa.refine(interval, offset, x[offset])
        assert (interval.lb, interval.rb) == expected[offset]
    # The fifth character (n) does not occur: the interval becomes invalid.
    interval = paper_sa.refine(interval, 4, x[4])
    assert interval.is_empty


def test_refine_empty_interval_stays_empty(paper_sa):
    empty = SuffixInterval(3, 1)
    assert paper_sa.refine(empty, 0, ord("a")).is_empty


def test_refine_character_not_present(paper_sa):
    interval = paper_sa.refine(paper_sa.full_interval(), 0, ord("z"))
    assert interval.is_empty


def test_interval_size_properties():
    assert SuffixInterval(2, 5).size == 4
    assert SuffixInterval(2, 5).is_empty is False
    assert SuffixInterval(5, 2).size == 0
    assert SuffixInterval(5, 2).is_empty is True


# ----------------------------------------------------------------------
# longest_match (the paper's factorization example)
# ----------------------------------------------------------------------
def test_longest_match_paper_first_factor(paper_sa):
    """The first factor of bbaancabb against cabbaabba is (3, 4) => bbaa.

    Paper positions are 1-based; 0-based that is position 2.
    """
    position, length = paper_sa.longest_match(b"bbaancabb", 0)
    assert length == 4
    assert b"cabbaabba"[position : position + 4] == b"bbaa"


def test_longest_match_missing_character(paper_sa):
    position, length = paper_sa.longest_match(b"nnn", 0)
    assert length == 0


def test_longest_match_with_start_offset(paper_sa):
    position, length = paper_sa.longest_match(b"xxcabb", 2)
    assert length == 4
    assert b"cabbaabba"[position : position + length] == b"cabb"


def test_longest_match_respects_limit(paper_sa):
    position, length = paper_sa.longest_match(b"cabbaabba", 0, limit=3)
    assert length == 3
    assert b"cabbaabba"[position : position + 3] == b"cab"


def test_longest_match_whole_text(paper_sa):
    position, length = paper_sa.longest_match(b"cabbaabba", 0)
    assert (position, length) == (0, 9)


def test_longest_match_empty_query(paper_sa):
    assert paper_sa.longest_match(b"", 0) == (0, 0)


def test_longest_match_accelerated_and_faithful_agree():
    text = (b"the quick brown fox jumps over the lazy dog " * 6)[:200]
    fast = SuffixArray(text, accelerated=True)
    slow = SuffixArray(text, accelerated=False)
    queries = [
        b"the quick brown fox jumps over it",
        b"lazy dog the quick",
        b"zebra",
        b"fox jumps over the lazy dog " * 3,
    ]
    for query in queries:
        fast_match = fast.longest_match(query, 0)
        slow_match = slow.longest_match(query, 0)
        assert fast_match[1] == slow_match[1]
        assert text[fast_match[0] : fast_match[0] + fast_match[1]] == query[: fast_match[1]]


def test_longest_match_handles_nul_bytes():
    text = b"abc\x00\x00def\x00ghi"
    sa = SuffixArray(text, accelerated=True)
    query = b"c\x00\x00defXYZ"
    position, length = sa.longest_match(query, 0)
    assert text[position : position + length] == query[:length]
    assert length == 6  # matches "c\x00\x00def"


# ----------------------------------------------------------------------
# count / find_all
# ----------------------------------------------------------------------
def test_count_occurrences(paper_sa):
    assert paper_sa.count(b"b") == 4
    assert paper_sa.count(b"bba") == 2
    assert paper_sa.count(b"cabbaabba") == 1
    assert paper_sa.count(b"zz") == 0
    assert paper_sa.count(b"") == 0


def test_find_all_positions(paper_sa):
    assert sorted(paper_sa.find_all(b"bba")) == [2, 6]
    assert sorted(paper_sa.find_all(b"a")) == [1, 4, 5, 8]
    assert list(paper_sa.find_all(b"nope")) == []


# ----------------------------------------------------------------------
# LCP array
# ----------------------------------------------------------------------
def test_lcp_array_banana():
    sa = SuffixArray(b"banana")
    # Suffixes in order: a, ana, anana, banana, na, nana.
    assert sa.lcp_array().tolist() == [0, 1, 3, 0, 0, 2]


def test_lcp_array_empty():
    assert SuffixArray(b"").lcp_array().tolist() == []


def test_lcp_matches_bruteforce():
    text = b"abracadabra"
    sa = SuffixArray(text)
    lcp = sa.lcp_array()
    order = sa.array.tolist()
    for rank in range(1, len(text)):
        a = text[order[rank - 1] :]
        b = text[order[rank] :]
        common = 0
        while common < min(len(a), len(b)) and a[common] == b[common]:
            common += 1
        assert lcp[rank] == common
