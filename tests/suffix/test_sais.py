"""Tests for the SA-IS suffix array construction."""

import random

import pytest

from repro.suffix.sais import sais
from repro.suffix.verify import is_valid_suffix_array, naive_suffix_array


def test_empty_input():
    assert sais(b"") == []


def test_single_character():
    assert sais(b"a") == [0]


def test_two_distinct_characters():
    assert sais(b"ba") == [1, 0]


def test_two_equal_characters():
    assert sais(b"aa") == [1, 0]


def test_banana():
    assert sais(b"banana") == naive_suffix_array(b"banana")


def test_mississippi():
    assert sais(b"mississippi") == naive_suffix_array(b"mississippi")


def test_paper_dictionary_example():
    """The dictionary from Table 1: d = cabbaabba.

    The suffixes in lexicographic order are a, aabba, abba, abbaabba, ba,
    baabba, bba, bbaabba, cabbaabba — exactly the listing in the paper's
    Table 1.  (The numeric SA row printed in the paper's table is
    inconsistent with its own suffix listing; the listing is authoritative.)
    Our arrays are 0-based.
    """
    d = b"cabbaabba"
    expected_one_based = [9, 5, 6, 2, 8, 4, 7, 3, 1]
    assert sais(d) == [p - 1 for p in expected_one_based]
    assert sais(d) == naive_suffix_array(d)


def test_all_same_character():
    text = b"a" * 50
    assert sais(text) == list(range(49, -1, -1))


def test_integer_sequence_input():
    data = [3, 1, 2, 1, 3, 1]
    assert sais(data) == naive_suffix_array(bytes(data))


def test_rejects_negative_symbols():
    with pytest.raises(ValueError):
        sais([1, -2, 3])


@pytest.mark.parametrize("seed", range(8))
def test_random_small_alphabets(seed):
    rng = random.Random(seed)
    alphabet = b"ab" if seed % 2 == 0 else b"abcd"
    text = bytes(rng.choice(alphabet) for _ in range(rng.randint(1, 200)))
    assert sais(text) == naive_suffix_array(text)


@pytest.mark.parametrize("seed", range(4))
def test_random_full_byte_alphabet(seed):
    rng = random.Random(100 + seed)
    text = bytes(rng.randrange(256) for _ in range(rng.randint(1, 300)))
    result = sais(text)
    assert is_valid_suffix_array(text, result)


def test_repetitive_text():
    text = b"abcabcabcabcabcabc"
    assert sais(text) == naive_suffix_array(text)
