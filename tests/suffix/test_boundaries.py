"""Boundary regression tests for sub-width windows and zero-byte padding.

The accelerated search folds query/dictionary bytes into zero-padded
big-endian keys, so every window narrower than the key span (the final
bytes of a query, a short ``limit``, suffixes near the end of the text) and
every window containing a real ``\\x00`` byte is a chance for the padding
to impersonate data.  The jump lookups are guarded against both — these
tests pin the guards down with the adversarial shapes from the PR-2 audit:
trailing zero bytes in the query, in the dictionary, and in both, around
the 4-byte and 8-byte window edges, under every jump-index mode.
"""

import random

import pytest

from repro.suffix import SuffixArray

MODES = ("auto", "dict", "compact", "off")


def reference_streams(suffix_array, query):
    positions, lengths = [], []
    cursor = 0
    while cursor < len(query):
        position, length = suffix_array.longest_match(query, cursor)
        if length == 0:
            positions.append(query[cursor])
            lengths.append(0)
            cursor += 1
        else:
            positions.append(position)
            lengths.append(length)
            cursor += length
    return positions, lengths


def assert_boundary_identical(text, query):
    """Every accelerated configuration equals the faithful per-char parse."""
    faithful = SuffixArray(text, accelerated=False)
    expected = reference_streams(faithful, query)
    for mode in MODES:
        fast = SuffixArray(text, jump_start=mode)
        assert fast.factorize_stream(query) == expected, mode
        assert reference_streams(fast, query) == expected, mode
    # The forced large-text configuration (numpy machinery + compact index).
    large = SuffixArray(text)
    large._SMALL_TEXT_MAX = 0
    assert large.factorize_stream(query) == expected
    # Round-trip sanity.
    out = bytearray()
    for position, length in zip(*expected):
        out += bytes([position]) if length == 0 else text[position : position + length]
    assert bytes(out) == query


# ----------------------------------------------------------------------
# Trailing zeros: the shapes that collide with key padding
# ----------------------------------------------------------------------
@pytest.mark.parametrize("zeros", [1, 2, 3, 4, 5, 7, 8, 9])
def test_trailing_zeros_in_dictionary(zeros):
    text = b"abcdefgh" + b"\x00" * zeros
    for query in (b"abcdefgh", b"abcd", b"abc\x00", b"h" + b"\x00" * 4, b"\x00" * 3):
        assert_boundary_identical(text, query)


@pytest.mark.parametrize("zeros", [1, 2, 3, 4, 7, 8, 9])
def test_trailing_zeros_in_query(zeros):
    text = b"the quick brown fox jumps"
    for stem in (b"the quick", b"fox", b"", b"q"):
        assert_boundary_identical(text, stem + b"\x00" * zeros)


def test_trailing_zeros_in_both():
    for text_zeros in (1, 3, 4, 8):
        for query_zeros in (1, 3, 4, 8):
            text = b"banana" + b"\x00" * text_zeros
            query = b"banana" + b"\x00" * query_zeros
            assert_boundary_identical(text, query)
            assert_boundary_identical(text, b"nana" + b"\x00" * query_zeros + b"na")


def test_sub_width_window_cannot_borrow_padding():
    """A query tail shorter than the jump windows must not match a short
    suffix through the shared zero padding: ``ab`` (padded key ``ab\\0\\0``)
    and query tail ``ab`` agree on 8 key bytes but only 2 real ones."""
    text = b"xyab"  # suffix "ab" has padded 4/8-byte keys ab00..
    assert_boundary_identical(text, b"ab")  # 2-byte query, sub-4 window
    assert_boundary_identical(text, b"aba")  # 3-byte query, sub-4 window
    assert_boundary_identical(text, b"ab\x00\x00")  # explicit zeros: real match is 2
    # Same at the 8-byte edge.
    text = b"qqabcdef"
    assert_boundary_identical(text, b"abcdef")
    assert_boundary_identical(text, b"abcdef\x00\x00")


def test_match_ending_at_text_end_with_zero_suffix():
    """Real zeros at the end of the dictionary are matchable data, not
    padding; the guards must not reject them."""
    text = b"data\x00\x00"
    assert_boundary_identical(text, b"data\x00\x00")
    assert_boundary_identical(text, b"data\x00\x00\x00\x00")
    assert_boundary_identical(text, b"ta\x00")


# ----------------------------------------------------------------------
# limit caps: windows narrowed by the caller, not by the query end
# ----------------------------------------------------------------------
@pytest.mark.parametrize("limit", [0, 1, 2, 3, 4, 5, 7, 8, 9, 16])
def test_limit_narrower_than_available_query(limit):
    text = b"abcdefghijklmnop\x00\x00qrst"
    query = b"abcdefghijklmnop\x00\x00qrst"
    faithful = SuffixArray(text, accelerated=False)
    for mode in MODES:
        fast = SuffixArray(text, jump_start=mode)
        for start in range(len(query)):
            expected = faithful.longest_match(query, start, limit)
            got = fast.longest_match(query, start, limit)
            assert got[1] == expected[1], (mode, start, limit)
            if got[1]:
                assert text[got[0] : got[0] + got[1]] == query[start : start + got[1]]
            assert got[1] <= limit


def test_limit_zero_and_past_end():
    suffix_array = SuffixArray(b"abcabc")
    assert suffix_array.longest_match(b"abc", 0, 0) == (0, 0)
    assert suffix_array.longest_match(b"abc", 3) == (0, 0)
    assert suffix_array.longest_match(b"abc", 0, 99)[1] == 3


# ----------------------------------------------------------------------
# Randomised boundary fuzz, biased toward the edges
# ----------------------------------------------------------------------
def test_randomized_boundary_fuzz():
    rng = random.Random(20260730)
    alphabets = [b"ab\x00", b"a\x00", b"abc", bytes(range(4)) + b"\x00"]
    for trial in range(120):
        alphabet = alphabets[trial % len(alphabets)]
        text = bytes(rng.choices(alphabet, k=rng.randint(1, 40)))
        text += b"\x00" * rng.randint(0, 9)
        # Bias the query toward dictionary substrings ending near the edge.
        pieces = []
        for _ in range(rng.randint(0, 4)):
            lo = rng.randrange(0, len(text))
            pieces.append(text[lo : lo + rng.randint(1, 12)])
        pieces.append(bytes(rng.choices(alphabet, k=rng.randint(0, 10))))
        pieces.append(b"\x00" * rng.randint(0, 9))
        assert_boundary_identical(text, b"".join(pieces))
