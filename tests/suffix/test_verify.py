"""Tests for the suffix-array verification helpers."""

from repro.suffix import is_valid_suffix_array, naive_suffix_array, suffix_array_doubling


def test_naive_suffix_array_banana():
    assert naive_suffix_array(b"banana") == [5, 3, 1, 0, 4, 2]


def test_valid_array_accepted():
    text = b"verification"
    assert is_valid_suffix_array(text, suffix_array_doubling(text))


def test_wrong_length_rejected():
    assert not is_valid_suffix_array(b"abc", [0, 1])


def test_not_a_permutation_rejected():
    assert not is_valid_suffix_array(b"abc", [0, 0, 2])


def test_wrong_order_rejected():
    text = b"banana"
    correct = naive_suffix_array(text)
    wrong = list(reversed(correct))
    assert not is_valid_suffix_array(text, wrong)


def test_empty_text():
    assert is_valid_suffix_array(b"", [])
