"""Unit tests for the compact (array-backed) jump-start index."""

import random

import numpy as np
import pytest

from repro.suffix import CompactJumpIndex, SuffixArray


def reference_intervals(keys, shift):
    """Brute-force key -> (lb, rb) mapping from a sorted key array."""
    effective = [int(key) >> shift for key in keys]
    intervals = {}
    for rank, key in enumerate(effective):
        if key not in intervals:
            intervals[key] = [rank, rank]
        else:
            intervals[key][1] = rank
    return {key: tuple(bounds) for key, bounds in intervals.items()}


@pytest.mark.parametrize("shift", [0, 32])
def test_matches_brute_force_mapping(shift):
    rng = random.Random(9)
    for _ in range(40):
        n = rng.randrange(0, 300)
        keys = np.sort(
            np.array([rng.randrange(0, 2**64) for _ in range(n)], dtype=np.uint64)
        )
        index = CompactJumpIndex(keys, shift=shift)
        expected = reference_intervals(keys, shift)
        assert len(index) == len(expected)
        assert dict(index.items()) == expected
        for key, interval in expected.items():
            assert index.get(key) == interval
            assert key in index
        for _ in range(25):
            probe = rng.randrange(0, 2**64) >> shift
            assert index.get(probe) == expected.get(probe)
            assert index.get(probe, "sentinel") == expected.get(probe, "sentinel")


def test_empty_key_array():
    index = CompactJumpIndex(np.array([], dtype=np.uint64))
    assert len(index) == 0
    assert index.get(0) is None
    assert index.get(12345, -1) == -1
    assert 7 not in index


def test_duplicate_heavy_keys_collapse_to_runs():
    keys = np.array([5] * 100 + [9] * 3 + [2**40] * 7, dtype=np.uint64)
    index = CompactJumpIndex(keys)
    assert len(index) == 3
    assert index.get(5) == (0, 99)
    assert index.get(9) == (100, 102)
    assert index.get(2**40) == (103, 109)


def test_extreme_key_values():
    keys = np.array([0, 0, 1, 2**63, 2**64 - 1, 2**64 - 1], dtype=np.uint64)
    index = CompactJumpIndex(keys)
    assert index.get(0) == (0, 1)
    assert index.get(1) == (2, 2)
    assert index.get(2**63) == (3, 3)
    assert index.get(2**64 - 1) == (4, 5)
    assert index.get(2**62) is None


def test_load_factor_and_memory_bounds():
    keys = np.sort(np.random.default_rng(3).integers(0, 2**63, 50_000).astype(np.uint64))
    index = CompactJumpIndex(keys)
    assert 0 < index.load_factor <= 2 / 3 + 1e-9
    # ~10 B per distinct key: 4 B run start + <= ~8 B of (power-of-two
    # rounded) hash slots.  The whole point of the structure.
    assert index.nbytes <= len(index) * 17
    assert index.table_size >= len(index)


def test_agrees_with_dict_index_on_real_text():
    """Compact and dict representations of the same suffix array must hold
    the identical mapping (the factorization loops treat them as drop-in
    replacements)."""
    text = b"abracadabra banana abracadabra \x00\x00 the end" * 8
    dict_version = SuffixArray(text, jump_start="dict")
    compact_version = SuffixArray(text, jump_start="compact")
    dict_version._ensure_keys()
    compact_version._ensure_keys()
    assert dict_version.jump_index_kind == "dict"
    assert compact_version.jump_index_kind == "compact"
    assert dict(compact_version._jump_index.items()) == dict_version._jump_index
    assert dict(compact_version._jump4_index.items()) == dict_version._jump4_index


def test_rejects_oversized_inputs_early():
    class _FakeKeys:
        pass

    with pytest.raises(TypeError):
        CompactJumpIndex(_FakeKeys())


# ----------------------------------------------------------------------
# Probe cache (the hot-key fast path)
# ----------------------------------------------------------------------
def _small_index(probe_cache=16):
    keys = np.sort(np.array([1, 1, 2, 5, 5, 5, 9], dtype=np.uint64))
    return CompactJumpIndex(keys, probe_cache=probe_cache)


def test_probe_cache_counts_hits_and_misses():
    index = _small_index()
    assert index.probe_cache_info() == {
        "hits": 0, "misses": 0, "size": 0, "capacity": 16,
        "batch_hits": 0, "batch_misses": 0,
    }
    first = index.get(5)
    assert first == (3, 5)
    assert index.probe_cache_info()["misses"] == 1
    assert index.probe_cache_info()["hits"] == 0
    # The repeat answers from the cache, byte-identical.
    assert index.get(5) == first
    info = index.probe_cache_info()
    assert info == {
        "hits": 1, "misses": 1, "size": 1, "capacity": 16,
        "batch_hits": 0, "batch_misses": 0,
    }


def test_probe_cache_remembers_absent_keys():
    index = _small_index()
    sentinel = object()
    assert index.get(777) is None
    assert index.get(777, sentinel) is sentinel  # cached miss honours default
    info = index.probe_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    # A cached miss must not shadow a present key.
    assert index.get(1) == (0, 1)


def test_probe_cache_evicts_fifo_beyond_capacity():
    index = _small_index(probe_cache=2)
    index.get(1)
    index.get(2)
    assert index.probe_cache_info()["size"] == 2
    index.get(9)  # evicts key 1
    assert index.probe_cache_info()["size"] == 2
    index.get(1)  # re-probe: a miss again
    info = index.probe_cache_info()
    assert info["hits"] == 0
    assert info["misses"] == 4


def test_probe_cache_disabled_keeps_counters_at_zero():
    index = _small_index(probe_cache=0)
    for _ in range(3):
        assert index.get(5) == (3, 5)
    assert index.probe_cache_info() == {
        "hits": 0, "misses": 0, "size": 0, "capacity": 0,
        "batch_hits": 0, "batch_misses": 0,
    }
    with pytest.raises(ValueError):
        _small_index(probe_cache=-1)


def test_probe_cache_results_match_uncached():
    rng = random.Random(7)
    keys = np.sort(
        np.array([rng.randrange(0, 50) for _ in range(200)], dtype=np.uint64)
    )
    cached = CompactJumpIndex(keys, probe_cache=8)
    uncached = CompactJumpIndex(keys, probe_cache=0)
    for _ in range(500):
        key = rng.randrange(0, 60)
        assert cached.get(key) == uncached.get(key), key
    assert cached.probe_cache_info()["hits"] > 0
