"""Unit tests for the compact (array-backed) jump-start index."""

import random

import numpy as np
import pytest

from repro.suffix import CompactJumpIndex, SuffixArray


def reference_intervals(keys, shift):
    """Brute-force key -> (lb, rb) mapping from a sorted key array."""
    effective = [int(key) >> shift for key in keys]
    intervals = {}
    for rank, key in enumerate(effective):
        if key not in intervals:
            intervals[key] = [rank, rank]
        else:
            intervals[key][1] = rank
    return {key: tuple(bounds) for key, bounds in intervals.items()}


@pytest.mark.parametrize("shift", [0, 32])
def test_matches_brute_force_mapping(shift):
    rng = random.Random(9)
    for _ in range(40):
        n = rng.randrange(0, 300)
        keys = np.sort(
            np.array([rng.randrange(0, 2**64) for _ in range(n)], dtype=np.uint64)
        )
        index = CompactJumpIndex(keys, shift=shift)
        expected = reference_intervals(keys, shift)
        assert len(index) == len(expected)
        assert dict(index.items()) == expected
        for key, interval in expected.items():
            assert index.get(key) == interval
            assert key in index
        for _ in range(25):
            probe = rng.randrange(0, 2**64) >> shift
            assert index.get(probe) == expected.get(probe)
            assert index.get(probe, "sentinel") == expected.get(probe, "sentinel")


def test_empty_key_array():
    index = CompactJumpIndex(np.array([], dtype=np.uint64))
    assert len(index) == 0
    assert index.get(0) is None
    assert index.get(12345, -1) == -1
    assert 7 not in index


def test_duplicate_heavy_keys_collapse_to_runs():
    keys = np.array([5] * 100 + [9] * 3 + [2**40] * 7, dtype=np.uint64)
    index = CompactJumpIndex(keys)
    assert len(index) == 3
    assert index.get(5) == (0, 99)
    assert index.get(9) == (100, 102)
    assert index.get(2**40) == (103, 109)


def test_extreme_key_values():
    keys = np.array([0, 0, 1, 2**63, 2**64 - 1, 2**64 - 1], dtype=np.uint64)
    index = CompactJumpIndex(keys)
    assert index.get(0) == (0, 1)
    assert index.get(1) == (2, 2)
    assert index.get(2**63) == (3, 3)
    assert index.get(2**64 - 1) == (4, 5)
    assert index.get(2**62) is None


def test_load_factor_and_memory_bounds():
    keys = np.sort(np.random.default_rng(3).integers(0, 2**63, 50_000).astype(np.uint64))
    index = CompactJumpIndex(keys)
    assert 0 < index.load_factor <= 2 / 3 + 1e-9
    # ~10 B per distinct key: 4 B run start + <= ~8 B of (power-of-two
    # rounded) hash slots.  The whole point of the structure.
    assert index.nbytes <= len(index) * 17
    assert index.table_size >= len(index)


def test_agrees_with_dict_index_on_real_text():
    """Compact and dict representations of the same suffix array must hold
    the identical mapping (the factorization loops treat them as drop-in
    replacements)."""
    text = b"abracadabra banana abracadabra \x00\x00 the end" * 8
    dict_version = SuffixArray(text, jump_start="dict")
    compact_version = SuffixArray(text, jump_start="compact")
    dict_version._ensure_keys()
    compact_version._ensure_keys()
    assert dict_version.jump_index_kind == "dict"
    assert compact_version.jump_index_kind == "compact"
    assert dict(compact_version._jump_index.items()) == dict_version._jump_index
    assert dict(compact_version._jump4_index.items()) == dict_version._jump4_index


def test_rejects_oversized_inputs_early():
    class _FakeKeys:
        pass

    with pytest.raises(TypeError):
        CompactJumpIndex(_FakeKeys())
