"""Adversarial equivalence tests for the accelerated fast path.

The jump-start index, the eager key levels and the inlined
``factorize_stream`` loop must all produce exactly the parse of the paper's
per-character algorithm.  These tests hammer the cases where the fast path
could plausibly diverge: zero bytes in queries (which collide with the key
padding), dictionaries shorter than the 8-byte key width, matches that end
exactly at the dictionary boundary, and the jump-start hit/miss paths.
"""

import random

import pytest

from repro.suffix import SuffixArray


def reference_streams(suffix_array, query):
    """The parse as repeated ``longest_match`` calls (the documented contract)."""
    positions, lengths = [], []
    cursor = 0
    while cursor < len(query):
        position, length = suffix_array.longest_match(query, cursor)
        if length == 0:
            positions.append(query[cursor])
            lengths.append(0)
            cursor += 1
        else:
            positions.append(position)
            lengths.append(length)
            cursor += length
    return positions, lengths


def assert_all_modes_agree(text, query):
    """Fast stream, accelerated longest_match and faithful mode all agree."""
    fast = SuffixArray(text)
    no_jump = SuffixArray(text, jump_start=False)
    faithful = SuffixArray(text, accelerated=False)
    expected = reference_streams(faithful, query)
    assert fast.factorize_stream(query) == expected
    assert no_jump.factorize_stream(query) == expected
    assert reference_streams(fast, query) == expected
    # Round-trip: the parse reproduces the query exactly.
    out = bytearray()
    for position, length in zip(*expected):
        if length == 0:
            out.append(position)
        else:
            out += text[position : position + length]
    assert bytes(out) == query


def test_zero_bytes_in_query_and_dictionary():
    text = b"ab\x00cd\x00\x00ef\x00abab"
    query = b"ab\x00cd\x00\x00efXY\x00\x00\x00abab\x00"
    assert_all_modes_agree(text, query)


def test_query_of_only_zero_bytes():
    assert_all_modes_agree(b"abcdef", b"\x00\x00\x00\x00")
    assert_all_modes_agree(b"a\x00b", b"\x00\x00\x00\x00\x00\x00\x00\x00\x00")


@pytest.mark.parametrize("size", [1, 2, 3, 7])
def test_dictionary_shorter_than_key_width(size):
    text = bytes(b"abcdefg"[:size])
    for query in (text, text * 5, b"x" + text, text + b"x", b"zzzzzzzzzz"):
        assert_all_modes_agree(text, query)


def test_match_ending_exactly_at_dictionary_boundary():
    text = b"0123456789abcdef"
    # The whole dictionary, its tail, and a tail extended past the boundary.
    assert_all_modes_agree(text, text)
    assert_all_modes_agree(text, text[8:])
    assert_all_modes_agree(text, text + b"XYZ")
    assert_all_modes_agree(text, text[10:] + b"0123")


def test_jump_start_hit_and_miss_paths():
    text = b"the quick brown fox jumps over the lazy dog"
    # hit: first 8 bytes occur verbatim; miss: 8-gram absent but shorter
    # prefixes present; miss entirely: no byte occurs.
    assert_all_modes_agree(text, b"the quick fox")
    assert_all_modes_agree(text, b"the quiX brown")
    assert_all_modes_agree(text, b"\x01\x02\x03")


def test_jump_start_index_matches_searchsorted_intervals():
    text = b"abracadabra banana abracadabra"
    suffix_array = SuffixArray(text)
    suffix_array._ensure_keys()
    assert suffix_array._jump_index is not None
    level0 = suffix_array._get_level_keys(0)
    for key, (lb, rb) in suffix_array._jump_index.items():
        import numpy as np

        qk = np.uint64(key)
        assert int(level0.searchsorted(qk, side="left")) == lb
        assert int(level0.searchsorted(qk, side="right")) - 1 == rb


def test_eager_levels_are_prebuilt():
    suffix_array = SuffixArray(b"mississippi river runs " * 4)
    suffix_array._ensure_keys()
    for level in range(SuffixArray._MAX_LEVELS):
        assert level in suffix_array._level_keys


def test_randomized_adversarial_equivalence():
    rng = random.Random(1234)
    alphabets = [b"ab", b"ab\x00", bytes(range(256)), b"\xff\xfe\x00a"]
    for _ in range(60):
        alphabet = rng.choice(alphabets)
        text = bytes(rng.choices(alphabet, k=rng.randint(1, 120)))
        query = bytes(rng.choices(alphabet + b"QZ", k=rng.randint(0, 60)))
        assert_all_modes_agree(text, query)


def test_large_text_configuration_uses_compact_jump_index():
    """Texts beyond _SMALL_TEXT_MAX drop the Python-list machinery but keep a
    (compact) jump index and parse identically — the 1 MiB gate no longer
    silently disables jump-start for the multi-MB dictionaries the paper
    targets."""
    rng = random.Random(77)
    text = bytes(rng.choices(b"abcdef <html>", k=400))
    gated = SuffixArray(text)
    gated._SMALL_TEXT_MAX = 0  # force the large-text configuration
    gated._ensure_keys()
    assert gated.jump_index_kind == "compact"
    assert gated._jump_index is not None
    assert gated._jump4_index is not None
    assert gated._level_key_lists is None
    assert gated._sa_list is None
    reference = SuffixArray(text, accelerated=False)
    for _ in range(20):
        query = bytes(rng.choices(b"abcdef <html>XY\x00", k=rng.randint(0, 80)))
        streams = gated.factorize_stream(query)
        assert streams == reference_streams(reference, query)
        assert all(isinstance(value, int) for value in streams[0])


def test_factorize_stream_empty_and_type_checks():
    suffix_array = SuffixArray(b"abc")
    assert suffix_array.factorize_stream(b"") == ([], [])
    with pytest.raises(TypeError):
        suffix_array.factorize_stream("not bytes")
