"""Byte-identity battery for the vectorized single-bisect match engine.

The engine (``SuffixArray.match_stream`` / ``_match_factor``) resolves each
factor with one lcp-aware binary search over its jump-start interval and
batches cold jump probes; the scalar accelerated loop refines key level by
key level.  Both are exact, so every entry point must produce the identical
parse under every configuration.  These tests force ``vectorize`` on and
off explicitly (small texts route to the scalar loop by default) and sweep
the adversarial shapes from the PR-2 audit: empty documents, all-literal
streams, trailing-zero boundary keys, and every jump-index mode.
"""

import random

import pytest

from repro.core import RlzDictionary, RlzFactorizer
from repro.suffix import SuffixArray

MODES = ("auto", "dict", "compact", "off")


def reference_streams(suffix_array, query):
    """The faithful per-factor parse via ``longest_match``."""
    positions, lengths = [], []
    cursor = 0
    while cursor < len(query):
        position, length = suffix_array.longest_match(query, cursor)
        if length == 0:
            positions.append(query[cursor])
            lengths.append(0)
            cursor += 1
        else:
            positions.append(position)
            lengths.append(length)
            cursor += length
    return positions, lengths


def engine_streams(suffix_array, query):
    """The parse with the vectorized engine forced on."""
    suffix_array.vectorize = True
    try:
        return suffix_array.factorize_stream(query)
    finally:
        suffix_array.vectorize = None


def scalar_streams(suffix_array, query):
    """The parse with the engine forced off (scalar accelerated loop)."""
    suffix_array.vectorize = False
    try:
        return suffix_array.factorize_stream(query)
    finally:
        suffix_array.vectorize = None


def assert_engine_identical(text, query):
    """Engine output equals the scalar parse and the faithful reference,
    under every jump-index mode."""
    faithful = SuffixArray(text, accelerated=False)
    expected = reference_streams(faithful, query)
    for mode in MODES:
        suffix_array = SuffixArray(text, jump_start=mode)
        assert scalar_streams(suffix_array, query) == expected, mode
        assert engine_streams(suffix_array, query) == expected, mode


# ----------------------------------------------------------------------
# Degenerate documents
# ----------------------------------------------------------------------
def test_empty_document():
    suffix_array = SuffixArray(b"abracadabra")
    suffix_array.vectorize = True
    assert suffix_array.factorize_stream(b"") == ([], [])
    assert list(suffix_array.match_stream(b"")) == []


def test_all_literal_stream():
    """Every query byte absent from the dictionary: pure literal output."""
    text = b"abcdefgh" * 8
    query = b"XYZ" * 20 + b"\x01\x02"
    assert_engine_identical(text, query)
    suffix_array = SuffixArray(text)
    positions, lengths = engine_streams(suffix_array, query)
    assert lengths == [0] * len(query)
    assert positions == list(query)


def test_single_byte_documents():
    for text in (b"a", b"ab", b"abcdefg"):
        for query in (b"a", b"z", b"ab", text):
            assert_engine_identical(text, query)


# ----------------------------------------------------------------------
# Trailing-zero boundary keys (the PR-2 regression shapes)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("zeros", [1, 2, 3, 4, 7, 8, 9])
def test_trailing_zeros_in_dictionary(zeros):
    text = b"abcdefgh" + b"\x00" * zeros
    for query in (b"abcdefgh", b"abcd", b"abc\x00", b"h" + b"\x00" * 4, b"\x00" * 3):
        assert_engine_identical(text, query)


@pytest.mark.parametrize("zeros", [1, 2, 3, 4, 7, 8, 9])
def test_trailing_zeros_in_query(zeros):
    text = b"the quick brown fox\x00jumps"
    for stem in (b"quick", b"fox", b"the quick brown fox"):
        assert_engine_identical(text, stem + b"\x00" * zeros)


def test_zero_windows_route_to_fallback_identically():
    """Windows containing a real zero byte take the scalar fallback inside
    the engine; the parse must not change."""
    text = b"ab\x00cd\x00\x00ef" * 6
    for query in (b"ab\x00cd", b"\x00\x00ef", b"ab\x00cd\x00\x00efab", text):
        assert_engine_identical(text, query)


# ----------------------------------------------------------------------
# Jump-mode sweep with adversarial random streams
# ----------------------------------------------------------------------
def test_randomized_equivalence_across_modes():
    rng = random.Random(20260808)
    alphabet = b"abcdef <html>XY\x00"
    for trial in range(25):
        text = bytes(rng.choices(alphabet, k=rng.randint(1, 300)))
        query = bytes(rng.choices(alphabet, k=rng.randint(0, 120)))
        assert_engine_identical(text, query)


def test_forced_large_text_configuration():
    """The numpy + compact-index configuration auto-enables the engine."""
    rng = random.Random(7)
    text = bytes(rng.choices(b"abcdef <html>", k=600))
    suffix_array = SuffixArray(text)
    suffix_array._SMALL_TEXT_MAX = 0
    reference = SuffixArray(text, accelerated=False)
    assert suffix_array._vectorize_enabled()
    for _ in range(10):
        query = bytes(rng.choices(b"abcdef <html>XY\x00", k=rng.randint(0, 90)))
        assert suffix_array.factorize_stream(query) == reference_streams(
            reference, query
        )


def test_longest_match_parity_at_every_cursor():
    rng = random.Random(99)
    text = bytes(rng.choices(b"abcdefgh", k=250))
    query = bytes(rng.choices(b"abcdefghXY", k=120))
    suffix_array = SuffixArray(text)
    for cursor in range(len(query)):
        suffix_array.vectorize = False
        expected = suffix_array.longest_match(query, cursor)
        suffix_array.vectorize = True
        assert suffix_array.longest_match(query, cursor) == expected, cursor
    suffix_array.vectorize = None


# ----------------------------------------------------------------------
# Entry-point equivalence
# ----------------------------------------------------------------------
def test_match_stream_equals_factorize_stream():
    rng = random.Random(3)
    text = bytes(rng.choices(b"lorem ipsum dolor", k=400))
    query = bytes(rng.choices(b"lorem ipsum dolor sitXZ", k=200))
    suffix_array = SuffixArray(text)
    suffix_array.vectorize = True
    positions, lengths = suffix_array.factorize_stream(query)
    assert list(suffix_array.match_stream(query)) == list(zip(positions, lengths))
    suffix_array.vectorize = None


def test_iter_factors_matches_factorize_streams():
    dictionary = RlzDictionary(b"the quick brown fox jumps over the lazy dog " * 20)
    factorizer = RlzFactorizer(dictionary)
    document = b"the lazy fox jumps QUICKLY over the brown dog \x00\x00 end"
    positions, lengths = factorizer.factorize_streams(document)
    factors = list(factorizer.iter_factors(document))
    assert [f.position for f in factors] == positions
    assert [f.length for f in factors] == lengths


# ----------------------------------------------------------------------
# Batch probing (compact index, literal-heavy regime)
# ----------------------------------------------------------------------
def test_batch_probing_engages_and_stays_identical():
    """A long literal-heavy stream drives the stride EWMA under the cutoff,
    so cold probes go through ``get_batch`` — and the parse is unchanged."""
    text = b"abcdefgh" * 40
    suffix_array = SuffixArray(text, jump_start="compact")
    query = bytes(random.Random(5).choices(b"XYZW", k=400)) + b"abcdefgh"
    expected = scalar_streams(suffix_array, query)
    before = suffix_array.probe_cache_info()
    assert engine_streams(suffix_array, query) == expected
    after = suffix_array.probe_cache_info()
    batched = (after["batch_hits"] + after["batch_misses"]) - (
        before["batch_hits"] + before["batch_misses"]
    )
    assert batched > 0


# ----------------------------------------------------------------------
# Routing: explicit attribute and environment override
# ----------------------------------------------------------------------
def test_env_var_overrides_auto_routing(monkeypatch):
    text = b"small text, dict-index regime " * 4
    suffix_array = SuffixArray(text)
    assert not suffix_array._vectorize_enabled()  # small text: scalar default
    monkeypatch.setenv("REPRO_VECTORIZE", "1")
    assert suffix_array._vectorize_enabled()
    monkeypatch.setenv("REPRO_VECTORIZE", "0")
    assert not suffix_array._vectorize_enabled()
    # The explicit attribute wins over the environment.
    suffix_array.vectorize = True
    assert suffix_array._vectorize_enabled()
    suffix_array.vectorize = None
