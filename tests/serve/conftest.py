"""Shared fixtures for the network-serving tests: one built archive."""

from __future__ import annotations

import pytest

from repro.api import ArchiveConfig, CacheSpec, DictionarySpec, EncodingSpec, RlzArchive


def make_config(cache: CacheSpec | None = None) -> ArchiveConfig:
    return ArchiveConfig(
        dictionary=DictionarySpec(size=32 * 1024, sample_size=512),
        encoding=EncodingSpec(scheme="ZV"),
        cache=cache or CacheSpec(),
    )


@pytest.fixture(scope="module")
def served_archive(tmp_path_factory, gov_small):
    """A built archive (path, config, collection) shared by a test module."""
    path = tmp_path_factory.mktemp("serve") / "served.rlz"
    config = make_config()
    RlzArchive.build(gov_small, config, path).close()
    return path, config, gov_small
