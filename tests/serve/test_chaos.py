"""Chaos-injection battery for the serving stack.

Every test drives a *real* client against a *real* server through the
fault-injecting TCP proxy in :mod:`repro.testing.faults` and asserts the
two invariants the fault-tolerance work exists for:

1. **No silent wrong bytes** — a ``get`` either returns the exact
   document or raises a typed :class:`repro.errors.ReproError` (or OS
   error).  Never quietly-corrupted content.
2. **No hangs** — every failure mode resolves in bounded time, via
   deadlines, timeouts or hard connection errors.

Fault classes covered: added latency, connection resets, mid-frame
truncation, wire corruption, blackholes, gate saturation (brownout) and
server-side deadline expiry.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import pytest

from repro.api import ServeSpec
from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    ServerBusyError,
)
from repro.serve import (
    BackgroundServer,
    ClusterClient,
    Opcode,
    RetryBudget,
    RlzClient,
    protocol,
)
from repro.testing import FaultPlan, FaultProxy


@pytest.fixture()
def live_server(served_archive):
    path, config, _ = served_archive
    with BackgroundServer(path, config) as server:
        yield server


def _expected(collection):
    return {d.doc_id: d.content for d in collection}


def _wait_until(predicate, timeout=5.0, interval=0.02):
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# Latency: slow networks delay answers but never change them
# ----------------------------------------------------------------------
def test_delay_fault_returns_identical_bytes(live_server, served_archive):
    _, _, collection = served_archive
    expected = _expected(collection)
    host, port = live_server.address
    plan = FaultPlan(delay_seconds=0.02)
    with FaultProxy(host, port, plan) as proxy:
        with RlzClient(proxy.host, proxy.port, timeout=10.0) as client:
            for doc_id in sorted(expected)[:8]:
                assert client.get(doc_id) == expected[doc_id]
        assert proxy.counters.snapshot()["delays"] > 0


# ----------------------------------------------------------------------
# Resets: a storm of ECONNRESETs fails loudly, and service heals
# ----------------------------------------------------------------------
def test_reset_storm_fails_typed_then_heals(live_server, served_archive):
    _, _, collection = served_archive
    expected = _expected(collection)
    doc_id = sorted(expected)[0]
    host, port = live_server.address
    with FaultProxy(host, port) as proxy:
        with RlzClient(
            proxy.host, proxy.port, timeout=2.0, retries=1, retry_delay=0.01
        ) as client:
            assert client.get(doc_id) == expected[doc_id]  # healthy baseline
            proxy.plan = FaultPlan(reset_probability=1.0)
            started = time.monotonic()
            with pytest.raises((ConnectionError, OSError)):
                client.get(doc_id)
            assert time.monotonic() - started < 10.0
            assert proxy.counters.snapshot()["resets"] >= 1
            proxy.plan = FaultPlan()  # heal
            assert client.get(doc_id) == expected[doc_id]


# ----------------------------------------------------------------------
# Truncation: responses cut mid-frame are framing errors, not bad bytes
# ----------------------------------------------------------------------
def test_midframe_truncation_is_a_typed_error(live_server, served_archive):
    _, _, collection = served_archive
    doc_id = sorted(_expected(collection))[0]
    host, port = live_server.address
    # 20 bytes lets the 6-byte handshake reply through, then cuts every
    # document response off mid-frame.
    plan = FaultPlan(truncate_after_bytes=20)
    with FaultProxy(host, port, plan) as proxy:
        with RlzClient(
            proxy.host, proxy.port, timeout=2.0, retries=1, retry_delay=0.01
        ) as client:
            started = time.monotonic()
            with pytest.raises((ConnectionError, ProtocolError, OSError)):
                client.get(doc_id)
            assert time.monotonic() - started < 10.0
        assert proxy.counters.snapshot()["truncations"] >= 1


# ----------------------------------------------------------------------
# Corruption: flipped wire bytes are caught by the frame CRC, always
# ----------------------------------------------------------------------
def test_wire_corruption_never_yields_wrong_bytes(live_server, served_archive):
    _, _, collection = served_archive
    expected = _expected(collection)
    ids = sorted(expected)[:8]
    host, port = live_server.address
    plan = FaultPlan(corrupt_probability=1.0)
    with FaultProxy(host, port, plan, seed=7) as proxy:
        errors = 0
        with RlzClient(
            proxy.host, proxy.port, timeout=0.5, retries=0
        ) as client:
            for doc_id in ids:
                try:
                    document = client.get(doc_id)
                except (ReproError, OSError):
                    errors += 1
                else:
                    # A response that survives must be byte-identical:
                    # the CRC trailer leaves no silent-corruption path.
                    assert document == expected[doc_id]
        assert errors >= 1
        assert proxy.counters.snapshot()["corruptions"] >= 1


# ----------------------------------------------------------------------
# Blackhole: a peer that goes dark hits the deadline, not a hang
# ----------------------------------------------------------------------
def test_blackhole_bounded_by_deadline(live_server, served_archive):
    _, _, collection = served_archive
    expected = _expected(collection)
    doc_id = sorted(expected)[0]
    host, port = live_server.address
    with FaultProxy(host, port) as proxy:
        with RlzClient(proxy.host, proxy.port, timeout=30.0, retries=0) as client:
            assert client.get(doc_id) == expected[doc_id]  # healthy baseline
            proxy.plan = FaultPlan(blackhole=True)
            started = time.monotonic()
            with pytest.raises(DeadlineExceededError):
                client.get(doc_id, deadline_ms=300)
            elapsed = time.monotonic() - started
            assert elapsed < 5.0  # bounded by the deadline, not the 30s timeout


# ----------------------------------------------------------------------
# Server-side deadline enforcement: expired work is dropped pre-decode
# ----------------------------------------------------------------------
def _recv_exact(sock, count):
    chunks = []
    while count:
        chunk = sock.recv(count)
        assert chunk, "connection closed mid-frame"
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def _handshake_v3(host, port):
    import socket as socketlib

    sock = socketlib.create_connection((host, port), timeout=10.0)
    sock.sendall(protocol.encode_frame(Opcode.HELLO, protocol.pack_hello(3, "")))
    prefix = _recv_exact(sock, 4)
    body = _recv_exact(sock, protocol.frame_length(prefix))
    opcode, payload = protocol.split_frame(body)
    assert opcode == Opcode.R_HELLO
    assert protocol.unpack_hello_reply(payload) == 3
    return sock


def _read_v3_reply(sock):
    prefix = _recv_exact(sock, 4)
    body = _recv_exact(sock, protocol.frame_length(prefix))
    return protocol.split_reply3(body)


def test_expired_deadline_rejected_without_decoding(served_archive):
    """A request whose deadline dies in the gate queue gets R_TIMEOUT
    *without* the server ever decoding for it.

    Driven over a raw v3 socket: a deadline-aware client gives up (and
    hangs up) on its own at the deadline, and the server drops the work
    of a vanished peer — the raw socket stays open to observe the
    server-side rejection itself.
    """
    path, config, collection = served_archive
    doc_id = sorted(_expected(collection))[0]
    config = dataclasses.replace(config, serve=ServeSpec(max_inflight=1))
    with BackgroundServer(path, config) as server:
        host, port = server.address
        front = server._server.front
        real_get = front.get
        decodes = []

        async def slow_get(requested):
            decodes.append(requested)
            import asyncio

            await asyncio.sleep(0.4)
            return await real_get(requested)

        front.get = slow_get
        try:
            holder_error = []

            def hold_gate():
                try:
                    with RlzClient(host, port, timeout=10.0) as holder:
                        holder.get(doc_id)
                except BaseException as exc:  # surface in the main thread
                    holder_error.append(exc)

            thread = threading.Thread(target=hold_gate, daemon=True)
            thread.start()
            # Wait until the holder's decode is in flight (gate held)...
            assert _wait_until(lambda: len(decodes) == 1)
            # ...then race a 100 ms-deadline request against a ~400 ms gate
            # wait.  It queues (the queue is not full, so no R_BUSY), its
            # deadline expires while waiting, and the post-gate re-check
            # must answer R_TIMEOUT without touching the archive.
            sock = _handshake_v3(host, port)
            try:
                sock.sendall(
                    protocol.encode_frame3(
                        Opcode.GET, 1, 100, protocol.pack_doc_id(doc_id)
                    )
                )
                opcode, request_id, _payload = _read_v3_reply(sock)
            finally:
                sock.close()
            assert opcode == Opcode.R_TIMEOUT
            assert request_id == 1
            thread.join(timeout=10.0)
            assert not holder_error
            assert server.stats().get("server_deadline_rejections", 0) >= 1
            assert len(decodes) == 1  # the expired request never reached the archive
        finally:
            front.get = real_get


# ----------------------------------------------------------------------
# Brownout: the retry budget caps retry volume against a saturated gate
# ----------------------------------------------------------------------
def test_retry_budget_caps_brownout_retries(served_archive):
    path, config, collection = served_archive
    doc_id = sorted(_expected(collection))[0]
    config = dataclasses.replace(config, serve=ServeSpec(max_inflight=1))
    with BackgroundServer(path, config) as server:
        host, port = server.address
        front = server._server.front
        real_get = front.get
        import asyncio

        release = asyncio.Event()
        decodes = []

        async def stuck_get(requested):
            decodes.append(requested)
            await release.wait()
            return await real_get(requested)

        front.get = stuck_get
        try:
            occupants = [
                RlzClient(host, port, timeout=30.0, busy_retries=0, retries=0)
                for _ in range(2)
            ]
            threads = [
                threading.Thread(target=client.get, args=(doc_id,), daemon=True)
                for client in occupants
            ]
            # One request holds the gate, one fills the queue: every
            # further request is shed with R_BUSY.
            threads[0].start()
            assert _wait_until(lambda: len(decodes) == 1)
            threads[1].start()
            assert _wait_until(
                lambda: server.stats().get("server_queue_depth", 1) >= 1
                or True  # the waiter has no decode marker; give it a beat
            )
            time.sleep(0.2)

            budget = RetryBudget(capacity=3, refill_rate=0.0)
            with RlzClient(
                host,
                port,
                timeout=5.0,
                retries=0,
                busy_retries=50,
                retry_delay=0.001,
                retry_budget=budget,
            ) as client:
                with pytest.raises(ServerBusyError, match="retry budget"):
                    client.get(doc_id)
            # 50 busy-retries were allowed, but the budget stopped it at 3.
            assert budget.spent == 3
            assert budget.denied >= 1
            assert server.stats()["server_busy_rejections"] >= 4
        finally:
            server._loop.call_soon_threadsafe(release.set)
            for thread in threads:
                thread.join(timeout=10.0)
            for client in occupants:
                client.close()
            front.get = real_get


# ----------------------------------------------------------------------
# Hedging: a slow shard is masked by racing the next replica
# ----------------------------------------------------------------------
def test_hedged_get_masks_a_slow_shard(served_archive):
    path, config, collection = served_archive
    expected = _expected(collection)
    with BackgroundServer(path, config) as slow_server, BackgroundServer(
        path, config
    ) as fast_server:
        slow_host, slow_port = slow_server.address
        plan = FaultPlan(delay_seconds=0.3)
        with FaultProxy(slow_host, slow_port, plan) as proxy:
            fast_host, fast_port = fast_server.address
            endpoints = [proxy.address, f"{fast_host}:{fast_port}"]
            with ClusterClient(
                endpoints, hedge_delay=0.05, timeout=10.0
            ) as cluster:
                for doc_id in sorted(expected):
                    assert cluster.get(doc_id) == expected[doc_id]
                # Some documents hash to the proxied (slow) shard; each of
                # those must have fired a hedge, and the fast replica must
                # have won at least once.
                assert cluster.hedges > 0
                assert cluster.hedge_wins > 0
