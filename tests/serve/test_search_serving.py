"""SEARCH served over sockets: single archive, async, and sharded fan-out.

The tentpole claim under test: a sharded SEARCH over a partitioned fleet
returns *exactly* the ranking (ids, scores, order) a single in-memory
:class:`repro.search.InvertedIndex` over the whole collection computes —
the stats-exchange leg makes per-shard BM25 collection-exact, the merge
is deterministic, and snippets come from windowed partial decode on the
shard that owns the document.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import (
    ArchiveConfig,
    DictionarySpec,
    EncodingSpec,
    PartitionSpec,
    RlzArchive,
    SearchSpec,
)
from repro.errors import SearchError
from repro.search import InvertedIndex, index_sidecar_path, tokenize_text
from repro.serve import (
    AsyncClusterClient,
    AsyncRlzClient,
    BackgroundServer,
    ClusterClient,
    RlzClient,
    build_partitioned_archives,
)


def _search_config(shards: int = 0) -> ArchiveConfig:
    return ArchiveConfig(
        dictionary=DictionarySpec(size=32 * 1024, sample_size=512),
        encoding=EncodingSpec(scheme="ZV"),
        partition=PartitionSpec(shards=shards) if shards else PartitionSpec(),
        search=SearchSpec(enabled=True),
    )


def _queries(collection):
    counts = {}
    for document in collection:
        for term in set(tokenize_text(document.text())):
            counts[term] = counts.get(term, 0) + 1
    common = sorted(counts, key=lambda term: (-counts[term], term))
    rare = sorted(counts, key=lambda term: (counts[term], term))
    return [common[0], " ".join(common[:3]), f"{common[0]} {rare[0]}", rare[0]]


@pytest.fixture(scope="module")
def indexed_archive(tmp_path_factory, gov_small):
    """One unpartitioned archive built with its search sidecar."""
    path = tmp_path_factory.mktemp("search-serve") / "indexed.rlz"
    config = _search_config()
    RlzArchive.build(gov_small, config, path).close()
    assert index_sidecar_path(path).exists()
    return path, config, gov_small


@pytest.fixture(scope="module")
def search_server(indexed_archive):
    path, config, _ = indexed_archive
    with BackgroundServer(path, config) as server:
        yield server


@pytest.fixture(scope="module")
def reference(gov_small):
    return InvertedIndex.build(gov_small)


# ----------------------------------------------------------------------
# Single archive over a socket
# ----------------------------------------------------------------------
def test_remote_search_equals_local_index(search_server, reference, gov_small):
    with RlzClient(*search_server.address) as client:
        for query in _queries(gov_small):
            expected = reference.search(query, top_k=10)
            hits = client.search(query, top_k=10)
            assert [hit.doc_id for hit in hits] == [r.doc_id for r in expected]
            assert [hit.score for hit in hits] == [r.score for r in expected]


def test_snippets_come_from_the_document(search_server, gov_small):
    query = _queries(gov_small)[0]
    contents = {document.doc_id: document.content for document in gov_small}
    with RlzClient(*search_server.address) as client:
        hits = client.search(query, top_k=5, snippet_chars=120)
        assert hits
        for hit in hits:
            assert 0 < len(hit.snippet) <= 120
            # The window is a verbatim slice of the stored document,
            # positioned where the server says it is.
            document = contents[hit.doc_id]
            assert (
                document[hit.snippet_start : hit.snippet_start + len(hit.snippet)]
                == hit.snippet
            )
            # Query-biased: the window contains a query term.
            assert any(
                term.encode() in hit.snippet.lower()
                for term in tokenize_text(query)
            )


def test_no_snippets_by_default(search_server, gov_small):
    with RlzClient(*search_server.address) as client:
        hits = client.search(_queries(gov_small)[0], top_k=3)
        assert hits and all(hit.snippet == b"" for hit in hits)


def test_stats_leg_reports_local_statistics(search_server, reference, gov_small):
    query = _queries(gov_small)[1]
    with RlzClient(*search_server.address) as client:
        num_documents, total_length, frequencies = client.search_stats(query)
    assert num_documents == len(gov_small)
    assert total_length > 0
    assert frequencies == {
        term: reference.document_frequency(term)
        for term in set(tokenize_text(query))
    }


def test_no_results_for_unknown_terms(search_server):
    with RlzClient(*search_server.address) as client:
        assert client.search("zzz-never-indexed-zzz") == []


def test_health_exposes_search_counters(search_server, gov_small):
    with RlzClient(*search_server.address) as client:
        client.search(_queries(gov_small)[0])
        health = client.health()
    (archive_health,) = health.values()
    assert archive_health["search_index"] == 1
    assert archive_health["search_requests"] >= 1


def test_archive_without_index_raises_search_error(tmp_path, gov_small):
    config = ArchiveConfig(
        dictionary=DictionarySpec(size=32 * 1024, sample_size=512),
        encoding=EncodingSpec(scheme="ZV"),
    )
    path = tmp_path / "noindex.rlz"
    RlzArchive.build(gov_small, config, path).close()
    assert not index_sidecar_path(path).exists()
    with BackgroundServer(path, config) as server:
        with RlzClient(*server.address) as client:
            with pytest.raises(SearchError, match="no search index"):
                client.search("anything at all")


def test_async_client_search_parity(search_server, reference, gov_small):
    queries = _queries(gov_small)

    async def main():
        async with AsyncRlzClient(*search_server.address) as client:
            ranked = [await client.search(query, top_k=10) for query in queries]
            stats = await client.search_stats(queries[0])
        return ranked, stats

    ranked, stats = asyncio.run(main())
    for query, hits in zip(queries, ranked):
        expected = reference.search(query, top_k=10)
        assert [hit.doc_id for hit in hits] == [r.doc_id for r in expected]
        assert [hit.score for hit in hits] == [r.score for r in expected]
    assert stats[0] == len(gov_small)


# ----------------------------------------------------------------------
# Sharded fan-out over a partitioned fleet
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def search_fleet(tmp_path_factory, gov_small):
    """A 4-way partitioned fleet, every shard carrying its own index."""
    directory = tmp_path_factory.mktemp("search-fleet")
    paths = build_partitioned_archives(gov_small, _search_config(shards=4), directory)
    for path in paths.values():
        assert index_sidecar_path(path).exists()
    servers, endpoints = [], []
    try:
        for ring_id, path in paths.items():
            server = BackgroundServer(path, _search_config())
            host, port = server.start()
            servers.append(server)
            endpoints.append(f"{ring_id}@{host}:{port}")
        yield endpoints
    finally:
        for server in servers:
            server.stop()


def test_sharded_search_equals_single_local_index(
    search_fleet, reference, gov_small
):
    """The acceptance criterion: identical ids, scores and order."""
    with ClusterClient(search_fleet, retries=0, retry_delay=0.01) as client:
        for query in _queries(gov_small):
            expected = reference.search(query, top_k=10)
            hits = client.search(query, top_k=10)
            assert [hit.doc_id for hit in hits] == [r.doc_id for r in expected]
            assert [hit.score for hit in hits] == [r.score for r in expected]


def test_sharded_snippets_decode_on_the_owning_shard(search_fleet, gov_small):
    query = _queries(gov_small)[0]
    contents = {document.doc_id: document.content for document in gov_small}
    with ClusterClient(search_fleet, retries=0, retry_delay=0.01) as client:
        hits = client.search(query, top_k=6, snippet_chars=100)
        assert hits
        for hit in hits:
            document = contents[hit.doc_id]
            assert (
                document[hit.snippet_start : hit.snippet_start + len(hit.snippet)]
                == hit.snippet
            )


def test_sharded_search_respects_top_k(search_fleet, reference, gov_small):
    query = _queries(gov_small)[1]
    with ClusterClient(search_fleet, retries=0, retry_delay=0.01) as client:
        hits = client.search(query, top_k=3)
        assert len(hits) == min(3, len(reference.search(query, top_k=3)))


def test_async_sharded_search_parity(search_fleet, reference, gov_small):
    queries = _queries(gov_small)

    async def main():
        async with AsyncClusterClient(
            search_fleet, retries=0, retry_delay=0.01
        ) as client:
            return [await client.search(query, top_k=10) for query in queries]

    for query, hits in zip(queries, asyncio.run(main())):
        expected = reference.search(query, top_k=10)
        assert [hit.doc_id for hit in hits] == [r.doc_id for r in expected]
        assert [hit.score for hit in hits] == [r.score for r in expected]


# ----------------------------------------------------------------------
# Stats-exchange leg cached per shard-map epoch
# ----------------------------------------------------------------------
def test_search_stats_leg_cached_per_epoch(search_fleet, reference, gov_small):
    """Repeating a query reuses the global statistics (one stats fan-out
    per epoch); adopting a newer epoch invalidates the cache."""
    query = _queries(gov_small)[0]
    with ClusterClient(search_fleet, retries=0, retry_delay=0.01) as client:
        first = client.search(query, top_k=10)
        stats = client.stats()
        assert stats["cluster_search_stats_cache_misses"] == 1
        assert stats["cluster_search_stats_cache_hits"] == 0

        second = client.search(query, top_k=10)
        stats = client.stats()
        assert stats["cluster_search_stats_cache_misses"] == 1
        assert stats["cluster_search_stats_cache_hits"] == 1
        # Cached statistics must not change the ranking.
        assert [hit.doc_id for hit in second] == [hit.doc_id for hit in first]
        assert [hit.score for hit in second] == [hit.score for hit in first]
        expected = reference.search(query, top_k=10)
        assert [hit.doc_id for hit in second] == [r.doc_id for r in expected]

        # A newer epoch moves documents between shards: the cache clears
        # and the next search pays a fresh stats fan-out.
        adopted = client._adopt(
            client.epoch + 1,
            client.endpoints,
            client.shard_map.virtual_nodes,
        )
        assert adopted
        assert len(client._stats_cache) == 0
        client.search(query, top_k=10)
        stats = client.stats()
        assert stats["cluster_search_stats_cache_misses"] == 2


def test_search_stats_cache_is_bounded(search_fleet, gov_small):
    queries = _queries(gov_small)
    with ClusterClient(search_fleet, retries=0, retry_delay=0.01) as client:
        client._STATS_CACHE_CAP = 1
        for query in queries[:2]:
            client.search(query, top_k=3)
        assert len(client._stats_cache) == 1
        # The most recent query is the one retained.
        assert list(client._stats_cache) == [queries[1]]


def test_async_search_stats_leg_cached(search_fleet, reference, gov_small):
    query = _queries(gov_small)[0]

    async def main():
        async with AsyncClusterClient(
            search_fleet, retries=0, retry_delay=0.01
        ) as client:
            first = await client.search(query, top_k=10)
            second = await client.search(query, top_k=10)
            stats = await client.stats()
            return first, second, stats

    first, second, stats = asyncio.run(main())
    assert stats["cluster_search_stats_cache_misses"] == 1
    assert stats["cluster_search_stats_cache_hits"] == 1
    assert [hit.doc_id for hit in second] == [hit.doc_id for hit in first]
    assert [hit.score for hit in second] == [hit.score for hit in first]
    expected = reference.search(query, top_k=10)
    assert [hit.doc_id for hit in second] == [r.doc_id for r in expected]
