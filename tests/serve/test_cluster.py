"""Cluster layer: shard map stability, breakers, fan-out, failover.

The contract under test: a :class:`ClusterClient` over N replicas is
byte-for-byte indistinguishable from one archive — including while a
shard is dying mid-run — and the consistent-hash routing only remaps the
documents a removed endpoint owned.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.errors import ConfigurationError, StorageError, StoreClosedError
from repro.serve import BackgroundServer, CircuitBreaker, ClusterClient, ShardMap


@pytest.fixture(scope="module")
def cluster(served_archive):
    """Two live replicas of the same archive plus their endpoint labels."""
    path, config, collection = served_archive
    servers = [BackgroundServer(path, config) for _ in range(2)]
    endpoints = []
    for server in servers:
        host, port = server.start()
        endpoints.append(f"{host}:{port}")
    yield endpoints, collection, servers
    for server in servers:
        try:
            server.stop()
        except Exception:
            pass


# ----------------------------------------------------------------------
# ShardMap
# ----------------------------------------------------------------------
def test_shard_map_routes_every_endpoint_exactly_once():
    shard_map = ShardMap(["a:1", "b:2", "c:3"], virtual_nodes=16)
    for doc_id in range(200):
        route = shard_map.route(doc_id)
        assert sorted(route) == ["a:1", "b:2", "c:3"]
        assert route[0] == shard_map.primary(doc_id)


def test_shard_map_is_independent_of_endpoint_order():
    doc_ids = range(500)
    forward = ShardMap(["a:1", "b:2", "c:3"])
    for permutation in itertools.permutations(["a:1", "b:2", "c:3"]):
        shuffled = ShardMap(list(permutation))
        assert all(
            forward.primary(doc_id) == shuffled.primary(doc_id)
            for doc_id in doc_ids
        )


def test_shard_map_balances_roughly():
    endpoints = [f"host{i}:70{i:02d}" for i in range(4)]
    shard_map = ShardMap(endpoints, virtual_nodes=128)
    counts = {label: 0 for label in endpoints}
    total = 4000
    for doc_id in range(total):
        counts[shard_map.primary(doc_id)] += 1
    for label, count in counts.items():
        assert total * 0.10 <= count <= total * 0.45, counts


def test_shard_map_removal_only_remaps_the_removed_endpoints_documents():
    """The consistent-hashing guarantee: dropping one endpoint leaves every
    other endpoint's documents exactly where they were."""
    full = ShardMap(["a:1", "b:2", "c:3"], virtual_nodes=64)
    without_c = ShardMap(["a:1", "b:2"], virtual_nodes=64)
    moved = 0
    for doc_id in range(2000):
        before = full.primary(doc_id)
        after = without_c.primary(doc_id)
        if before == "c:3":
            moved += 1
            assert after in ("a:1", "b:2")
        else:
            assert after == before, doc_id
    assert moved > 0  # c owned something


def test_shard_map_failover_order_is_the_ring_walk():
    shard_map = ShardMap(["a:1", "b:2", "c:3"], virtual_nodes=32)
    smaller = ShardMap(["a:1", "b:2"], virtual_nodes=32)
    for doc_id in range(300):
        route = shard_map.route(doc_id)
        if route[0] == "c:3":
            # With c gone, the doc lands on its first failover.
            assert smaller.primary(doc_id) == route[1]


def test_shard_map_validation():
    with pytest.raises(ConfigurationError):
        ShardMap([])
    with pytest.raises(ConfigurationError):
        ShardMap(["a:1", "a:1"])
    with pytest.raises(ConfigurationError):
        ShardMap(["a:1"], virtual_nodes=0)


def test_shard_map_assignments_group_in_order():
    shard_map = ShardMap(["a:1", "b:2"], virtual_nodes=32)
    doc_ids = list(range(50))
    groups = shard_map.assignments(doc_ids)
    assert sorted(sum(groups.values(), [])) == doc_ids
    for label, ids in groups.items():
        assert ids == [d for d in doc_ids if shard_map.primary(d) == label]


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
def test_breaker_trips_after_consecutive_failures_and_cools_down():
    clock = [0.0]
    breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=lambda: clock[0])
    assert breaker.state == "closed"
    for _ in range(2):
        breaker.record_failure()
    assert breaker.allow()  # two failures: still closed
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    assert breaker.trips == 1
    clock[0] = 4.9
    assert not breaker.allow()
    clock[0] = 5.1
    assert breaker.state == "half-open"
    # allow() is a pure query: routing layers may probe it repeatedly
    # without consuming the half-open trial.
    assert breaker.allow() and breaker.allow()
    breaker.record_failure()     # trial failed: re-open
    assert breaker.state == "open"
    assert not breaker.allow()
    clock[0] = 11.0
    assert breaker.allow()
    breaker.record_success()     # trial worked: closed again
    assert breaker.state == "closed"
    assert breaker.allow() and breaker.allow()


def test_breaker_success_resets_the_failure_streak():
    breaker = CircuitBreaker(threshold=2, cooldown=1.0)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == "closed"  # never two in a row


def test_breaker_validation():
    with pytest.raises(ConfigurationError):
        CircuitBreaker(threshold=0)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(cooldown=-1)


def test_breaker_half_open_admits_exactly_one_trial_under_contention():
    """Many threads racing try_trial() on a half-open breaker: one wins.

    Two concurrent probes hitting a barely-recovered endpoint is how
    half-open states re-kill it, so the exactly-one guarantee has to hold
    under real contention, not just sequentially.
    """
    import threading

    clock = [0.0]
    breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=lambda: clock[0])
    breaker.record_failure()
    clock[0] = 2.0  # cooldown elapsed: half-open
    assert breaker.state == "half-open"

    barrier = threading.Barrier(16)
    admitted = []
    admitted_lock = threading.Lock()

    def probe():
        barrier.wait()
        if breaker.try_trial():
            with admitted_lock:
                admitted.append(threading.get_ident())

    threads = [threading.Thread(target=probe) for _ in range(16)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
    assert len(admitted) == 1

    # While the probe is unresolved, everyone else keeps being refused...
    assert not breaker.try_trial()
    # ...an inconclusive outcome hands the slot to the next prober...
    breaker.release_trial()
    assert breaker.try_trial()
    # ...and a successful probe closes the breaker for all.
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.try_trial() and breaker.try_trial()


# ----------------------------------------------------------------------
# ClusterClient against live replicas
# ----------------------------------------------------------------------
def test_cluster_get_and_get_many_preserve_order_across_shards(cluster):
    endpoints, collection, _ = cluster
    expected = {d.doc_id: d.content for d in collection}
    ids = sorted(expected)
    with ClusterClient(endpoints, retries=1, retry_delay=0.01) as client:
        # Both shards own some documents (otherwise the test is vacuous).
        owners = {client.shard_map.primary(doc_id) for doc_id in ids}
        assert owners == set(endpoints)
        for doc_id in ids[:5]:
            assert client.get(doc_id) == expected[doc_id]
        request = list(reversed(ids)) + ids[:4] + [ids[0]] * 3
        assert client.get_many(request) == [expected[i] for i in request]
        assert client.get_many([]) == []


def test_cluster_iter_documents_merges_to_store_order(cluster):
    endpoints, collection, _ = cluster
    with ClusterClient(endpoints, retries=1, retry_delay=0.01) as client:
        items = list(client.iter_documents())
        assert [doc_id for doc_id, _ in items] == client.doc_ids()
        assert dict(items) == {d.doc_id: d.content for d in collection}


def test_cluster_archive_errors_pass_through_not_failover(cluster):
    endpoints, collection, _ = cluster
    with ClusterClient(endpoints, retries=1, retry_delay=0.01) as client:
        missing = max(d.doc_id for d in collection) + 31337
        with pytest.raises(StorageError):
            client.get(missing)
        with pytest.raises(StorageError):
            client.get_many([next(iter(collection)).doc_id, missing])
        assert client.failovers == 0  # an answer, not a failure


def test_cluster_stats_flat_and_numeric(cluster):
    endpoints, collection, _ = cluster
    with ClusterClient(endpoints, retries=1, retry_delay=0.01) as client:
        client.get(next(iter(collection)).doc_id)
        stats = client.stats()
        assert stats["cluster_endpoints"] == 2
        for key, value in stats.items():
            assert isinstance(key, str)
            assert isinstance(value, (int, float)), key
        assert client.ping() < 30


def test_cluster_close_fences(cluster):
    endpoints, collection, _ = cluster
    client = ClusterClient(endpoints, retries=1, retry_delay=0.01)
    doc_id = next(iter(collection)).doc_id
    assert client.get(doc_id)
    client.close()
    client.close()
    assert client.closed
    with pytest.raises(StoreClosedError):
        client.get(doc_id)
    with pytest.raises(StoreClosedError):
        client.get_many([doc_id])


def test_cluster_validation():
    with pytest.raises(ConfigurationError):
        ClusterClient(["not-an-endpoint"])
    with pytest.raises(ConfigurationError):
        ClusterClient([])


# ----------------------------------------------------------------------
# Failover: kill a shard mid-run, results stay byte-identical
# ----------------------------------------------------------------------
def test_failover_reroute_is_byte_identical(served_archive):
    path, config, collection = served_archive
    expected = {d.doc_id: d.content for d in collection}
    ids = sorted(expected)
    request = ids * 2
    survivor = BackgroundServer(path, config)
    victim = BackgroundServer(path, config)
    endpoints = []
    for server in (survivor, victim):
        host, port = server.start()
        endpoints.append(f"{host}:{port}")
    try:
        with ClusterClient(
            endpoints, retries=0, retry_delay=0.01, breaker_cooldown=0.2
        ) as client:
            before = client.get_many(request)
            assert before == [expected[i] for i in request]
            assert client.failovers == 0
            victim.stop()  # a shard dies mid-run
            after = client.get_many(request)
            assert after == before  # byte-identical through the failover
            assert client.failovers > 0
            # Per-document gets fail over too (and trip the breaker so
            # later requests skip the corpse).
            victim_label = endpoints[1]
            victim_docs = [
                doc_id for doc_id in ids
                if client.shard_map.primary(doc_id) == victim_label
            ]
            assert victim_docs, "the dead shard owned nothing"
            for doc_id in victim_docs[:4]:
                assert client.get(doc_id) == expected[doc_id]
            assert dict(client.iter_documents()) == expected
            stats = client.stats()
            down = [
                index for index in range(2)
                if stats[f"shard{index}_reachable"] == 0
            ]
            assert down == [1]
    finally:
        survivor.stop()
        try:
            victim.stop()
        except Exception:
            pass


def test_failover_mid_scan_is_byte_identical(served_archive):
    """A shard that dies before (or while) its scan stream runs has its
    documents re-scanned from the replica, with the merged output still in
    exact store order."""
    path, config, collection = served_archive
    expected = {d.doc_id: d.content for d in collection}
    survivor = BackgroundServer(path, config)
    victim = BackgroundServer(path, config)
    endpoints = []
    for server in (survivor, victim):
        host, port = server.start()
        endpoints.append(f"{host}:{port}")
    try:
        with ClusterClient(
            endpoints, retries=0, retry_delay=0.01, breaker_cooldown=0.2
        ) as client:
            victim_label = endpoints[1]
            order = client.doc_ids()
            victim_owned = [
                doc_id for doc_id in order
                if client.shard_map.primary(doc_id) == victim_label
            ]
            assert victim_owned, "the dead shard owned nothing"
            # The per-shard streams dial lazily: killing the victim now
            # means its stream dies on first use, mid-iteration, and the
            # tail re-routes to the survivor.
            stream = client.iter_documents()
            victim.stop()
            items = list(stream)
            assert [doc_id for doc_id, _ in items] == order
            assert dict(items) == expected
            assert client.failovers > 0
    finally:
        survivor.stop()
        try:
            victim.stop()
        except Exception:
            pass


def test_all_shards_down_raises_the_connection_error(served_archive):
    path, config, collection = served_archive
    server = BackgroundServer(path, config)
    host, port = server.start()
    endpoint = f"{host}:{port}"
    client = ClusterClient([endpoint], retries=0, retry_delay=0.01)
    doc_id = next(iter(collection)).doc_id
    assert client.get(doc_id)
    server.stop()
    with pytest.raises((ConnectionError, OSError)):
        client.get(doc_id)
    with pytest.raises((ConnectionError, OSError)):
        client.get_many([doc_id])
    client.close()


# ----------------------------------------------------------------------
# Review regressions: busy re-route, breaker purity, window scoping
# ----------------------------------------------------------------------
def test_sustained_busy_reroutes_without_tripping_the_breaker(cluster):
    """A shard answering R_BUSY past the retry budget is saturated, not
    dead: get_many must re-route its batch to the replica and leave the
    breaker closed so the shard returns to rotation immediately."""
    from repro.errors import ServerBusyError

    endpoints, collection, _ = cluster
    expected = {d.doc_id: d.content for d in collection}
    ids = sorted(expected)
    with ClusterClient(endpoints, retries=1, retry_delay=0.01) as client:
        saturated = endpoints[0]
        real = client._clients[saturated].pipelined_get

        def always_busy(doc_ids, window=32, deadline_ms=None):
            raise ServerBusyError("server still busy after 8 retries")

        client._clients[saturated].pipelined_get = always_busy
        try:
            request = list(reversed(ids)) + ids[:3]
            assert client.get_many(request) == [expected[i] for i in request]
            assert client.failovers > 0
            assert client.breaker(saturated).state == "closed"  # not tripped
        finally:
            client._clients[saturated].pipelined_get = real
        # get() path: the saturated primary is skipped the same way.
        owned = [d for d in ids if client.shard_map.primary(d) == saturated]
        if owned:
            real_get = client._clients[saturated].get
            client._clients[saturated].get = (
                lambda doc_id, deadline_ms=None: (_ for _ in ()).throw(
                    ServerBusyError("busy")
                )
            )
            try:
                assert client.get(owned[0]) == expected[owned[0]]
                assert client.breaker(saturated).state == "closed"
            finally:
                client._clients[saturated].get = real_get


def test_breaker_filtering_does_not_consume_the_half_open_trial(cluster):
    """_candidates probes every breaker on every request; those probes
    must not eat the half-open trial slot or a recovered endpoint would
    stay excluded forever."""
    endpoints, collection, _ = cluster
    with ClusterClient(
        endpoints, retries=1, retry_delay=0.01, breaker_cooldown=0.05
    ) as client:
        breaker = client.breaker(endpoints[0])
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        time.sleep(0.08)
        # Many pure route-ordering probes...
        for doc_id in range(50):
            client._candidates(doc_id)
        # ...and the endpoint is still allowed for the actual request.
        assert breaker.allow()
        doc_id = next(iter(collection)).doc_id
        assert client.get(doc_id)  # a success closes it again
        assert breaker.state in ("closed", "half-open")


def test_pipelined_window_override_does_not_stick(cluster):
    endpoints, collection, _ = cluster
    ids = sorted(d.doc_id for d in collection)
    with ClusterClient(
        endpoints, retries=1, retry_delay=0.01, pipeline_window=32
    ) as client:
        client.pipelined_get(ids[:6], window=1)
        assert client._pipeline_window == 32  # per-call, not sticky
