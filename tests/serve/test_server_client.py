"""End-to-end tests: RlzServer serving RlzClient / AsyncRlzClient."""

from __future__ import annotations

import asyncio
import dataclasses
import socket
import threading
import uuid

import pytest

from repro.api import AsyncArchiveView, CacheSpec, ServeSpec
from repro.errors import ProtocolError, StorageError, StoreClosedError
from repro.serve import AsyncRlzClient, BackgroundServer, RlzClient, RlzServer


@pytest.fixture()
def live_server(served_archive):
    path, config, _ = served_archive
    with BackgroundServer(path, config) as server:
        yield server


def test_client_roundtrips_and_ordering(live_server, served_archive):
    _, _, collection = served_archive
    host, port = live_server.address
    with RlzClient(host, port) as client:
        doc_ids = client.doc_ids()
        assert doc_ids == sorted(document.doc_id for document in collection)
        assert len(client) == len(collection)
        # get: byte identity
        assert client.get(doc_ids[0]) == collection.document_by_id(doc_ids[0]).content
        # get_many: request order, duplicates preserved
        batch_ids = list(reversed(doc_ids)) + [doc_ids[0], doc_ids[0]]
        batch = client.get_many(batch_ids)
        assert batch == [collection.document_by_id(d).content for d in batch_ids]
        # streaming scan
        scanned = dict(client.iter_documents())
        assert scanned == {d.doc_id: d.content for d in collection}
        assert client.ping() < 5.0


def test_remote_errors_are_the_same_types(live_server):
    host, port = live_server.address
    with RlzClient(host, port) as client:
        missing = max(client.doc_ids()) + 1000
        with pytest.raises(StorageError):
            client.get(missing)
        # The connection survives a structured error frame.
        assert client.get(client.doc_ids()[0])


def test_closed_client_raises_store_closed(live_server):
    host, port = live_server.address
    client = RlzClient(host, port)
    assert client.get(client.doc_ids()[0])
    client.close()
    client.close()  # idempotent
    assert client.closed
    with pytest.raises(StoreClosedError):
        client.get(0)


def test_stats_opcode_reports_server_and_cache_counters(served_archive):
    path, base_config, _ = served_archive
    name = f"rlzs-{uuid.uuid4().hex[:12]}"
    config = dataclasses.replace(
        base_config,
        cache=CacheSpec(tier="shared", capacity=8, slot_bytes=64 * 1024, name=name),
    )
    with BackgroundServer(path, config) as server:
        host, port = server.address
        with RlzClient(host, port) as client:
            doc_id = client.doc_ids()[0]
            client.get(doc_id)
            client.get(doc_id)  # second hit comes from the shared tier
            stats = client.stats()
    assert stats["server_requests"] >= 3
    assert stats["server_connections_total"] >= 1
    # The shared-memory stats block crosses the wire: machine-wide counters.
    assert stats["cache_shared_hits"] >= 1
    assert stats["cache_shared_stores"] >= 1
    assert "cache_shared_evictions" in stats


def test_concurrent_clients_under_tight_backpressure(served_archive):
    """A max_inflight=2 gate must serialize decodes without corrupting or
    deadlocking many concurrent client threads."""
    path, base_config, collection = served_archive
    config = dataclasses.replace(base_config, serve=ServeSpec(max_inflight=2))
    contents = {d.doc_id: d.content for d in collection}
    with BackgroundServer(path, config) as server:
        host, port = server.address
        failures = []

        def session():
            try:
                with RlzClient(host, port) as client:
                    for doc_id in client.doc_ids():
                        assert client.get(doc_id) == contents[doc_id]
            except BaseException as exc:
                failures.append(exc)

        threads = [threading.Thread(target=session) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        stats = server.stats()
    assert stats["server_requests"] >= 8 * len(contents)
    assert stats["server_inflight_capacity"] == 2


def test_client_reconnects_after_server_restart(served_archive):
    """A pooled connection killed by a server restart is retried on a
    fresh dial — the caller never sees the blip."""
    path, config, collection = served_archive
    with BackgroundServer(path, config) as first:
        host, port = first.address
        client = RlzClient(host, port, retries=5, retry_delay=0.05)
        doc_id = client.doc_ids()[0]
        assert client.get(doc_id) == collection.document_by_id(doc_id).content
    # Server gone: the pooled connection is dead.  Restart on the same port.
    restart_config = dataclasses.replace(config, serve=ServeSpec(host=host, port=port))
    with BackgroundServer(path, restart_config):
        assert client.get(doc_id) == collection.document_by_id(doc_id).content
    client.close()


def test_client_disconnect_mid_request_leaves_server_serving(served_archive):
    """A client that hangs up while its request decodes must not take the
    server (or the front) down — the next connection is served normally."""
    path, config, collection = served_archive
    with BackgroundServer(path, config) as server:
        host, port = server.address
        # Hand-roll a connection and slam it shut right after sending GET.
        from repro.serve import protocol
        from repro.serve.protocol import Opcode

        raw = socket.create_connection((host, port), timeout=10)
        raw.sendall(protocol.encode_frame(Opcode.HELLO, protocol.pack_hello()))
        # Read the hello reply, then fire a request and vanish.
        reply = raw.recv(64)
        assert reply
        doc_id = sorted(d.doc_id for d in collection)[0]
        raw.sendall(protocol.encode_frame(Opcode.GET, protocol.pack_doc_id(doc_id)))
        raw.close()
        # The server keeps serving new clients.
        with RlzClient(host, port) as client:
            assert client.get(doc_id) == collection.document_by_id(doc_id).content


def test_async_client_matches_async_archive_surface(served_archive):
    path, config, collection = served_archive

    async def main():
        server = RlzServer.open(path, config)
        await server.start()
        try:
            client = AsyncRlzClient(server.host, server.port)
            assert isinstance(client, AsyncArchiveView)
            async with client:
                doc_ids = await client.doc_ids()
                document = await client.get(doc_ids[0])
                assert document == collection.document_by_id(doc_ids[0]).content
                batch = await client.get_many(list(reversed(doc_ids)))
                assert batch == [
                    collection.document_by_id(d).content for d in reversed(doc_ids)
                ]
                gathered = await client.gather(doc_ids[:6] + doc_ids[:6])
                assert gathered == [
                    collection.document_by_id(d).content
                    for d in doc_ids[:6] + doc_ids[:6]
                ]
                stats = await client.stats()
                assert stats["server_requests"] >= 3
                assert await client.ping() < 5.0
                with pytest.raises(StorageError):
                    await client.get(max(doc_ids) + 999)
            assert client.closed
            with pytest.raises(StoreClosedError):
                await client.get(doc_ids[0])
        finally:
            await server.close()

    asyncio.run(main())


def test_async_client_pool_size_validation():
    with pytest.raises(ProtocolError):
        AsyncRlzClient("127.0.0.1", 1, pool_size=0)
    with pytest.raises(ProtocolError):
        RlzClient("127.0.0.1", 1, retries=-1)


def test_connection_refused_raises_after_retries():
    # Grab a port nothing listens on.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    client = RlzClient("127.0.0.1", port, retries=1, retry_delay=0.01)
    with pytest.raises(OSError):
        client.get(0)
    client.close()


def test_server_refuses_double_start(served_archive):
    path, config, _ = served_archive

    async def main():
        server = RlzServer.open(path, config)
        await server.start()
        try:
            with pytest.raises(ProtocolError):
                await server.start()
        finally:
            await server.close()
        # close is idempotent and closes the owned front.
        await server.close()
        assert server.closed
        assert server.front.closed

    asyncio.run(main())


def test_shutdown_is_prompt_with_idle_pooled_connections(served_archive):
    """An idle pooled client connection (parked waiting for its next
    request) must not hold graceful shutdown for the drain window — only
    connections actively serving a request are drained."""
    import time

    path, config, _ = served_archive
    config = dataclasses.replace(config, serve=ServeSpec(drain_seconds=30.0))
    server = BackgroundServer(path, config)
    host, port = server.start()
    client = RlzClient(host, port)
    client.get(client.doc_ids()[0])  # leaves one idle connection in the pool
    start = time.perf_counter()
    server.stop()
    elapsed = time.perf_counter() - start
    client.close()
    assert elapsed < 5.0, f"shutdown stalled {elapsed:.1f}s on an idle connection"


def test_clients_constructed_outside_a_loop_work(served_archive):
    """Constructing RlzServer and AsyncRlzClient before any event loop
    exists must not bind asyncio primitives to the wrong loop (their
    semaphore/lock are created lazily inside the running loop)."""
    path, config, collection = served_archive
    # Both constructed with no running event loop:
    server = RlzServer.open(path, config)
    client = AsyncRlzClient("127.0.0.1", 0)

    async def run():
        await server.start()
        try:
            # The ephemeral port is only known post-start.
            client._host, client._port = server.host, server.port
            doc_ids = await client.doc_ids()
            document = await client.get(doc_ids[0])
            assert document == collection.document_by_id(doc_ids[0]).content
            await client.gather(doc_ids[:4])  # exercises the pool lock
            await client.close()
        finally:
            await server.close()

    asyncio.run(run())


def test_background_server_stats_snapshot(live_server):
    host, port = live_server.address
    with RlzClient(host, port) as client:
        client.get(client.doc_ids()[0])
        live = live_server.stats()
    assert live["server_requests"] >= 2
    final = live_server.stats()
    assert final["server_requests"] >= live["server_requests"]
