"""Unit tests for the wire protocol: framing, codecs, error mapping."""

from __future__ import annotations

import pytest

from repro import errors
from repro.errors import ProtocolError
from repro.serve import protocol
from repro.serve.protocol import Opcode


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def test_frame_roundtrip():
    frame = protocol.encode_frame(Opcode.GET, b"payload")
    length = protocol.frame_length(frame[:4])
    assert length == len(frame) - 4
    opcode, payload = protocol.split_frame(frame[4:])
    assert opcode == Opcode.GET
    assert payload == b"payload"


def test_frame_length_rejects_truncated_prefix():
    with pytest.raises(ProtocolError, match="truncated"):
        protocol.frame_length(b"\x00\x00")


def test_frame_length_rejects_empty_body():
    with pytest.raises(ProtocolError, match="zero-length"):
        protocol.frame_length(b"\x00\x00\x00\x00")


def test_frame_length_rejects_oversized():
    frame = protocol.encode_frame(Opcode.GET, b"x" * 100)
    with pytest.raises(ProtocolError, match="oversized"):
        protocol.frame_length(frame[:4], max_frame_bytes=50)


def test_split_frame_rejects_empty():
    with pytest.raises(ProtocolError):
        protocol.split_frame(b"")


# ----------------------------------------------------------------------
# Handshake
# ----------------------------------------------------------------------
def test_hello_roundtrip():
    assert protocol.unpack_hello(protocol.pack_hello()) == (
        protocol.PROTOCOL_VERSION,
        "",
    )
    assert protocol.unpack_hello(protocol.pack_hello(archive="wiki")) == (
        protocol.PROTOCOL_VERSION,
        "wiki",
    )
    # A legacy v1 HELLO is exactly the 5 original bytes and decodes with
    # an empty (= default) archive name.
    legacy = protocol.pack_hello(protocol.PROTOCOL_V1)
    assert len(legacy) == 5
    assert protocol.unpack_hello(legacy) == (protocol.PROTOCOL_V1, "")
    assert protocol.unpack_hello_reply(protocol.pack_hello_reply(1)) == 1


def test_hello_v1_cannot_name_an_archive():
    with pytest.raises(ProtocolError, match="version 1"):
        protocol.pack_hello(protocol.PROTOCOL_V1, archive="wiki")


def test_hello_rejects_oversized_archive_name():
    with pytest.raises(ProtocolError, match="too long"):
        protocol.pack_hello(archive="x" * 300)


def test_hello_rejects_bad_magic():
    with pytest.raises(ProtocolError, match="magic"):
        protocol.unpack_hello(b"HTTP\x01")


def test_hello_rejects_wrong_size():
    with pytest.raises(ProtocolError):
        protocol.unpack_hello(b"RL")


def test_hello_rejects_truncated_archive_name():
    whole = protocol.pack_hello(archive="wiki")
    with pytest.raises(ProtocolError, match="archive name"):
        protocol.unpack_hello(whole[:-2])


def test_version_negotiation():
    assert protocol.negotiate_version(protocol.PROTOCOL_VERSION) == (
        protocol.PROTOCOL_VERSION
    )
    # A v1 client keeps speaking v1; a futuristic client negotiates down.
    assert protocol.negotiate_version(protocol.PROTOCOL_V1) == protocol.PROTOCOL_V1
    assert (
        protocol.negotiate_version(protocol.PROTOCOL_VERSION + 7)
        == protocol.PROTOCOL_VERSION
    )
    with pytest.raises(ProtocolError, match="version mismatch"):
        protocol.negotiate_version(0)
    with pytest.raises(ProtocolError, match="version mismatch"):
        protocol.checked_version(99)
    with pytest.raises(ProtocolError, match="version mismatch"):
        protocol.checked_version(0)
    assert protocol.checked_version(protocol.PROTOCOL_V1) == protocol.PROTOCOL_V1


def test_v2_frame_roundtrip():
    frame = protocol.encode_frame2(Opcode.GET, 0xDEADBEEF, b"payload")
    length = protocol.frame_length(frame[:4])
    assert length == len(frame) - 4
    opcode, request_id, payload = protocol.split_frame2(frame[4:])
    assert opcode == Opcode.GET
    assert request_id == 0xDEADBEEF
    assert payload == b"payload"


def test_v2_frame_rejects_short_body():
    with pytest.raises(ProtocolError, match="v2 frame"):
        protocol.split_frame2(b"\x03\x00")


def test_scan_roundtrip():
    assert protocol.unpack_scan(protocol.pack_scan()) == (0, [])
    assert protocol.unpack_scan(protocol.pack_scan(16, [3, 1, 2])) == (16, [3, 1, 2])
    with pytest.raises(ProtocolError):
        protocol.unpack_scan(b"\x00")


def test_chunk_roundtrip_preserves_order_and_duplicates():
    items = [(5, b"five"), (1, b""), (5, b"five"), (-2, b"neg")]
    assert protocol.unpack_chunk(protocol.pack_chunk(items)) == items
    assert protocol.unpack_chunk(protocol.pack_chunk([])) == []


@pytest.mark.parametrize(
    "corrupt",
    [b"", b"\x00\x00\x00\x01", b"\x00\x00\x00\x01" + b"\x00" * 11,
     b"\x00\x00\x00\x00" + b"extra"],
)
def test_chunk_rejects_corrupt_payloads(corrupt):
    with pytest.raises(ProtocolError):
        protocol.unpack_chunk(corrupt)


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------
def test_doc_id_roundtrip():
    for doc_id in (0, 1, 2**40, -1):
        assert protocol.unpack_doc_id(protocol.pack_doc_id(doc_id)) == doc_id
    with pytest.raises(ProtocolError):
        protocol.unpack_doc_id(b"\x00")


def test_doc_ids_roundtrip():
    for ids in ([], [7], list(range(100))):
        assert protocol.unpack_doc_ids(protocol.pack_doc_ids(ids)) == ids
    with pytest.raises(ProtocolError):
        protocol.unpack_doc_ids(b"\x00")
    with pytest.raises(ProtocolError):  # count says 2, bytes say 1
        protocol.unpack_doc_ids(protocol.pack_doc_ids([1])[:-1] + b"\x00\x00\x00\x02")


def test_documents_roundtrip_preserves_order_and_duplicates():
    documents = [b"alpha", b"", b"alpha", b"\x00" * 1000]
    assert protocol.unpack_documents(protocol.pack_documents(documents)) == documents


@pytest.mark.parametrize(
    "corrupt",
    [
        b"",  # missing count
        b"\x00\x00\x00\x01",  # count 1, no length
        b"\x00\x00\x00\x01\x00\x00\x00\x05ab",  # length 5, 2 bytes
        b"\x00\x00\x00\x00extra",  # trailing bytes
    ],
)
def test_documents_rejects_corrupt_batches(corrupt):
    with pytest.raises(ProtocolError):
        protocol.unpack_documents(corrupt)


def test_item_roundtrip():
    doc_id, document = protocol.unpack_item(protocol.pack_item(42, b"body"))
    assert (doc_id, document) == (42, b"body")
    with pytest.raises(ProtocolError):
        protocol.unpack_item(b"abc")


def test_stats_roundtrip():
    stats = {"requests": 3, "seconds": 0.25}
    assert protocol.unpack_stats(protocol.pack_stats(stats)) == stats
    with pytest.raises(ProtocolError):
        protocol.unpack_stats(b"not json")
    with pytest.raises(ProtocolError):
        protocol.unpack_stats(b"[1, 2]")


# ----------------------------------------------------------------------
# Error frames
# ----------------------------------------------------------------------
ALL_ERROR_CLASSES = sorted(protocol.ERROR_CODES, key=lambda cls: cls.__name__)


@pytest.mark.parametrize("error_class", ALL_ERROR_CLASSES)
def test_every_exported_error_roundtrips_exactly(error_class):
    """The wire must reproduce the concrete class, not an ancestor."""
    frame = protocol.error_to_frame(error_class("the message"))
    opcode, payload = protocol.split_frame(frame[4:])
    assert opcode == Opcode.R_ERROR
    with pytest.raises(error_class, match="the message") as excinfo:
        protocol.raise_error_frame(payload)
    assert type(excinfo.value) is error_class


def test_error_codes_cover_every_public_error():
    """Every class exported by repro.errors must have a wire code."""
    public = {
        obj
        for name, obj in vars(errors).items()
        if isinstance(obj, type) and issubclass(obj, errors.ReproError)
    }
    assert public == set(protocol.ERROR_CODES)


def test_unregistered_subclass_degrades_to_nearest_ancestor():
    class CustomStorageError(errors.StorageError):
        pass

    frame = protocol.error_to_frame(CustomStorageError("deep failure"))
    _, payload = protocol.split_frame(frame[4:])
    with pytest.raises(errors.StorageError, match="deep failure") as excinfo:
        protocol.raise_error_frame(payload)
    assert type(excinfo.value) is errors.StorageError


def test_non_repro_exception_degrades_to_repro_error():
    frame = protocol.error_to_frame(ValueError("server bug"))
    _, payload = protocol.split_frame(frame[4:])
    with pytest.raises(errors.ReproError, match="server bug") as excinfo:
        protocol.raise_error_frame(payload)
    assert type(excinfo.value) is errors.ReproError


def test_unknown_error_code_degrades_to_repro_error():
    with pytest.raises(errors.ReproError, match="future"):
        protocol.raise_error_frame(protocol.pack_error(999, "future error kind"))


def test_describe_opcode():
    assert protocol.describe_opcode(Opcode.GET) == "get"
    assert protocol.describe_opcode(Opcode.R_ERROR) == "r_error"
    assert protocol.describe_opcode(0x42) == "0x42"
