"""Partitioned archives: builds, epochs, live rebalancing and chaos.

The invariants under test, end to end:

* each shard's container holds *only* the doc ids its arc of the
  consistent-hash ring owns — never a stale copy of someone else's;
* the ``SHARD_MAP`` / ``R_WRONG_SHARD`` frames round-trip exactly;
* adding a shard to the ring only remaps the documents the new shard
  takes — every other document keeps its old owner (the consistent-
  hashing contract an epoch bump relies on);
* a four-way partitioned fleet is byte-identical to the single local
  archive it was built from, through ``ClusterClient``;
* a live rebalance under concurrent reads completes with zero failed
  requests, clients cut over via pushed epochs (``R_WRONG_SHARD`` →
  refresh → retry, no restart), donors then refuse the moved arc, and
  every container on disk again holds only owned ids;
* killing the donor's link mid-rebalance (``FaultProxy``) leaves the
  recipient's staged sidecar intact: a re-run resumes from the last
  acked doc id and the final fleet serves byte-identical documents.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import (
    ArchiveConfig,
    DictionarySpec,
    EncodingSpec,
    PartitionSpec,
    RlzArchive,
)
from repro.errors import ReproError, WrongShardError
from repro.serve import (
    BackgroundServer,
    ClusterClient,
    RlzClient,
    ShardMap,
    build_partitioned_archives,
    rebalance,
    write_spare_shard,
)
from repro.serve import protocol
from repro.storage import RlzStore
from repro.storage.partition import read_manifest
from repro.testing.faults import FaultPlan, FaultProxy


def make_config() -> ArchiveConfig:
    return ArchiveConfig(
        dictionary=DictionarySpec(size=32 * 1024, sample_size=512),
        encoding=EncodingSpec(scheme="ZV"),
    )


def _partition_config(shards: int) -> ArchiveConfig:
    config = make_config()
    return ArchiveConfig(
        dictionary=config.dictionary,
        encoding=config.encoding,
        partition=PartitionSpec(shards=shards),
    )


# ----------------------------------------------------------------------
# Wire frames
# ----------------------------------------------------------------------
def test_shard_map_frame_round_trips():
    labels = ["shard0@10.0.0.1:7000", "shard1@10.0.0.2:7000", "spare"]
    payload = protocol.pack_shard_map(7, labels, 128)
    assert protocol.unpack_shard_map(payload) == (7, labels, 128)


def test_shard_map_frame_empty_map():
    assert protocol.unpack_shard_map(protocol.pack_shard_map(0, [], 1)) == (0, [], 1)


def test_wrong_shard_frame_round_trips():
    payload = protocol.pack_wrong_shard(3, 41)
    assert protocol.unpack_wrong_shard(payload) == (3, 41)


# ----------------------------------------------------------------------
# Ring semantics
# ----------------------------------------------------------------------
def test_ring_id_and_transport_split():
    assert ShardMap.ring_id("shard0@10.0.0.1:7000") == "shard0"
    assert ShardMap.transport("shard0@10.0.0.1:7000") == "10.0.0.1:7000"
    assert ShardMap.ring_id("10.0.0.1:7000") == "10.0.0.1:7000"
    assert ShardMap.transport("10.0.0.1:7000") == "10.0.0.1:7000"


def test_placement_ignores_transport():
    """Moving a shard to a new host must not remap a single document."""
    before = ShardMap(["a@h1:1", "b@h2:2", "c@h3:3"])
    after = ShardMap(["a@h9:9", "b@h2:2", "c@h3:3"])
    for doc_id in range(500):
        assert ShardMap.ring_id(before.primary(doc_id)) == ShardMap.ring_id(
            after.primary(doc_id)
        )


def test_epoch_bump_adding_a_shard_only_remaps_its_arc():
    old = ShardMap(["shard0", "shard1", "shard2"], epoch=1)
    new = ShardMap(["shard0", "shard1", "shard2", "shard3"], epoch=2)
    assert new.epoch == old.epoch + 1
    moved = 0
    for doc_id in range(2000):
        if new.primary(doc_id) == "shard3":
            moved += 1
        else:
            # Everything the new shard does not take stays put.
            assert new.primary(doc_id) == old.primary(doc_id)
    # The new shard takes a real arc, roughly 1/4 of the space.
    assert 0 < moved < 2000 // 2


# ----------------------------------------------------------------------
# Partitioned builds
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def partitioned(tmp_path_factory, gov_small):
    """A 4-way shared-dictionary partition of the module's collection."""
    directory = tmp_path_factory.mktemp("partition")
    paths = build_partitioned_archives(gov_small, _partition_config(4), directory)
    return paths, gov_small


def test_each_shard_holds_only_owned_doc_ids(partitioned):
    paths, collection = partitioned
    ring = ShardMap(list(paths), epoch=1)
    expected = {ring_id: set() for ring_id in paths}
    for document in collection:
        expected[ring.primary(document.doc_id)].add(document.doc_id)
    seen = set()
    for ring_id, path in paths.items():
        store = RlzStore.open(path)
        held = set(store.doc_ids())
        assert held == expected[ring_id], ring_id
        assert not (held & seen)  # pairwise disjoint: stored exactly once
        seen |= held
        manifest = read_manifest(path)
        assert manifest.epoch == 1
        assert manifest.shard == ring_id
        assert set(manifest.shards) == set(paths)
        assert list(manifest.doc_order) == [d.doc_id for d in collection]
    assert seen == {d.doc_id for d in collection}


def test_shards_decode_byte_identical(partitioned):
    paths, collection = partitioned
    ring = ShardMap(list(paths), epoch=1)
    for ring_id, path in paths.items():
        with RlzArchive.open(path, make_config()) as shard:
            for doc_id in shard.doc_ids():
                assert ring.primary(doc_id) == ring_id
                assert shard.get(doc_id) == collection.document_by_id(doc_id).content


def test_per_shard_dictionary_build(tmp_path, gov_small):
    config = ArchiveConfig(
        dictionary=make_config().dictionary,
        encoding=make_config().encoding,
        partition=PartitionSpec(shards=2, shared_dictionary=False),
    )
    paths = build_partitioned_archives(gov_small, config, tmp_path)
    recovered = {}
    for path in paths.values():
        with RlzArchive.open(path, make_config()) as shard:
            for doc_id in shard.doc_ids():
                recovered[doc_id] = shard.get(doc_id)
    assert recovered == {d.doc_id: d.content for d in gov_small}


def test_spare_shard_is_empty_and_joining(tmp_path, partitioned):
    paths, _ = partitioned
    source = next(iter(paths.values()))
    spare = write_spare_shard(source, tmp_path / "spare.rlz", "spare")
    store = RlzStore.open(spare)
    assert store.doc_ids() == []
    manifest = read_manifest(spare)
    assert manifest.shard == "spare"
    assert "spare" not in manifest.shards  # joining: owns nothing yet
    assert manifest.doc_order == read_manifest(source).doc_order


# ----------------------------------------------------------------------
# Partitioned serving
# ----------------------------------------------------------------------
def _serve_fleet(paths):
    servers, endpoints = [], []
    for ring_id, path in paths.items():
        server = BackgroundServer(path, make_config())
        host, port = server.start()
        servers.append(server)
        endpoints.append(f"{ring_id}@{host}:{port}")
    return servers, endpoints


def test_partitioned_fleet_matches_local_archive(partitioned):
    paths, collection = partitioned
    servers, endpoints = _serve_fleet(paths)
    try:
        with ClusterClient(endpoints, retries=0, retry_delay=0.01) as client:
            order = [d.doc_id for d in collection]
            assert client.doc_ids() == order
            for document in collection:
                assert client.get(document.doc_id) == document.content
            request = list(reversed(order)) + order[:2]
            assert client.get_many(request) == [
                collection.document_by_id(d).content for d in request
            ]
            assert list(client.iter_documents()) == [
                (d.doc_id, d.content) for d in collection
            ]
            assert client.epoch == 1  # bootstrapped from SHARD_MAP
    finally:
        for server in servers:
            server.stop()


def test_server_refuses_unowned_doc_ids(partitioned):
    paths, collection = partitioned
    ring = ShardMap(list(paths), epoch=1)
    some_shard = next(iter(paths))
    unowned = next(
        d.doc_id
        for d in collection
        if ring.primary(d.doc_id) != some_shard
    )
    with BackgroundServer(paths[some_shard], make_config()) as server:
        with RlzClient(*server.address) as client:
            with pytest.raises(WrongShardError) as info:
                client.get(unowned)
            assert info.value.epoch == 1
            with pytest.raises(WrongShardError):
                client.get_many([unowned])


# ----------------------------------------------------------------------
# Live rebalancing
# ----------------------------------------------------------------------
def test_live_rebalance_zero_failed_reads(tmp_path, gov_small):
    paths = build_partitioned_archives(gov_small, _partition_config(2), tmp_path)
    spare = write_spare_shard(
        next(iter(paths.values())), tmp_path / "shard2.rlz", "shard2"
    )
    paths["shard2"] = spare
    servers, endpoints = _serve_fleet(paths)
    contents = {d.doc_id: d.content for d in gov_small}
    try:
        failures = []
        reads = [0]
        final_stats = {}
        stop = threading.Event()

        def reader():
            with ClusterClient(endpoints[:2], retry_delay=0.01) as client:
                while not stop.is_set():
                    for doc_id, expected in contents.items():
                        try:
                            if client.get(doc_id) != expected:
                                failures.append((doc_id, "bytes differ"))
                        except Exception as exc:  # noqa: BLE001 - tallied
                            failures.append((doc_id, repr(exc)))
                        reads[0] += 1
                # One full post-cutover sweep: every read now crosses the
                # new map (donors refuse the moved arc, pushing the epoch).
                for doc_id, expected in contents.items():
                    try:
                        if client.get(doc_id) != expected:
                            failures.append((doc_id, "bytes differ"))
                    except Exception as exc:  # noqa: BLE001 - tallied
                        failures.append((doc_id, repr(exc)))
                    reads[0] += 1
                final_stats.update(client.stats())

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            report = rebalance(endpoints[:2], to=endpoints[2], batch_docs=4)
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not failures, failures[:5]
        assert reads[0] > 0
        assert report.epoch == 2
        assert report.moved > 0
        assert len(report.shards) == 3
        # The client cut over via the pushed epoch, not a restart: it
        # started with the two old endpoints and ended on the new map.
        assert final_stats["cluster_epoch"] == 2
        assert final_stats["cluster_epoch_refreshes"] >= 1

        # Donors now refuse the moved arc with the new epoch.
        new_ring = ShardMap([ShardMap.ring_id(s) for s in report.shards], epoch=2)
        moved = [d for d in contents if new_ring.primary(d) == "shard2"]
        donor_label = next(e for e in endpoints if e.startswith("shard0@"))
        host, port = ShardMap.transport(donor_label).rsplit(":", 1)
        donor_moved = [
            d for d in moved if ShardMap(["shard0", "shard1"]).primary(d) == "shard0"
        ]
        if donor_moved:
            with RlzClient(host, int(port)) as direct:
                with pytest.raises(WrongShardError) as info:
                    direct.get(donor_moved[0])
                assert info.value.epoch == 2
    finally:
        for server in servers:
            server.stop()

    # On disk, every container again holds only owned ids — committed,
    # not overlayed: the rebalance sidecar is gone.
    new_ring = ShardMap(["shard0", "shard1", "shard2"], epoch=2)
    for ring_id, path in paths.items():
        store = RlzStore.open(path)
        assert set(store.doc_ids()) == {
            d for d in contents if new_ring.primary(d) == ring_id
        }, ring_id
        assert read_manifest(path).epoch == 2
        assert not path.with_name(path.name + ".rebalance").exists()


def test_rebalance_resumes_after_donor_link_dies(tmp_path, gov_small):
    """Chaos: the donor's link is cut mid-stream; the re-run resumes."""
    paths = build_partitioned_archives(gov_small, _partition_config(2), tmp_path)
    spare = write_spare_shard(
        next(iter(paths.values())), tmp_path / "shard2.rlz", "shard2"
    )
    servers, endpoints = _serve_fleet(paths)
    contents = {d.doc_id: d.content for d in gov_small}
    spare_server = BackgroundServer(spare, make_config())
    spare_host, spare_port = spare_server.start()
    to_label = f"shard2@{spare_host}:{spare_port}"
    try:
        # Which donor moves the most documents?  Fault that one, after
        # letting roughly one document through, so some INGEST batches
        # are acked before the link dies.
        old_ring = ShardMap(["shard0", "shard1"], epoch=1)
        new_ring = ShardMap(["shard0", "shard1", "shard2"], epoch=2)
        moving = [d for d in contents if new_ring.primary(d) == "shard2"]
        assert len(moving) >= 2, "collection too small to exercise resume"
        by_donor = {}
        for doc_id in moving:
            by_donor.setdefault(old_ring.primary(doc_id), []).append(doc_id)
        victim = max(by_donor, key=lambda ring_id: len(by_donor[ring_id]))
        assert len(by_donor[victim]) >= 2, "victim donor moves too few docs"
        victim_label = next(e for e in endpoints if e.startswith(f"{victim}@"))
        host, port = ShardMap.transport(victim_label).rsplit(":", 1)
        first_moving = len(contents[sorted(by_donor[victim])[0]])

        plan = FaultPlan(truncate_after_bytes=first_moving + 2048)
        with FaultProxy(host, int(port), plan) as proxy:
            faulted = [
                f"{victim}@{proxy.host}:{proxy.port}" if e == victim_label else e
                for e in endpoints
            ]
            # Seed from a healthy donor so the map/doc-order fetch survives.
            faulted.sort(key=lambda e: e == f"{victim}@{proxy.host}:{proxy.port}")
            # Short client timeout: the cut link surfaces as a timeout,
            # not a reset, and the default 30s would dominate the test.
            with pytest.raises((ReproError, OSError)):
                rebalance(faulted, to=to_label, batch_docs=1, timeout=3.0)

        # The failed run never installed the epoch...
        for endpoint in endpoints:
            h, p = ShardMap.transport(endpoint).rsplit(":", 1)
            with RlzClient(h, int(p)) as probe:
                assert probe.shard_map()[0] == 1
        # ...but the recipient's sidecar kept what was acked.
        with RlzClient(spare_host, spare_port) as probe:
            staged = probe.ingest([])
        assert staged, "no batch was acked before the link died"

        # Second run, healthy links: resumes from the last acked doc id.
        report = rebalance(endpoints, to=to_label, batch_docs=1)
        assert report.epoch == 2
        assert report.resumed == len(staged)
        assert report.moved == len(moving)

        # The fleet now serves every document byte-identically.
        with ClusterClient(
            endpoints + [to_label], retry_delay=0.01
        ) as client:
            for doc_id, expected in contents.items():
                assert client.get(doc_id) == expected
        with RlzClient(spare_host, spare_port) as recipient:
            for doc_id in moving:
                assert recipient.get(doc_id) == contents[doc_id]
    finally:
        spare_server.stop()
        for server in servers:
            server.stop()


def test_install_shard_map_is_idempotent(tmp_path, gov_small):
    paths = build_partitioned_archives(gov_small, _partition_config(2), tmp_path)
    with BackgroundServer(paths["shard0"], make_config()) as server:
        with RlzClient(*server.address) as client:
            epoch, labels, virtual_nodes = client.shard_map()
            assert epoch == 1
            # Re-installing the current (or an older) epoch is a no-op.
            installed = client.install_shard_map(epoch, labels, virtual_nodes)
            assert installed[0] == 1
            before = set(client.doc_ids())
            installed = client.install_shard_map(0, labels, virtual_nodes)
            assert installed[0] == 1
            assert set(client.doc_ids()) == before
