"""Wire frames for search serving (protocol v5).

Round-trips for the SEARCH request in every flag combination, both
R_SEARCH reply kinds (ranked results with snippets, shard-local term
stats), and the malformed-payload battery: unknown flags, truncations,
trailing bytes, contradictory flag combinations and oversized queries
must all raise :class:`~repro.errors.ProtocolError`, never mis-decode.
"""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.serve import protocol
from repro.serve.protocol import (
    MAX_QUERY_BYTES,
    PROTOCOL_V5,
    PROTOCOL_VERSION,
    Opcode,
    SearchHit,
)


def test_protocol_version_is_v5():
    assert PROTOCOL_V5 == 5
    assert PROTOCOL_VERSION == PROTOCOL_V5
    assert Opcode.SEARCH == 0x0D
    assert Opcode.R_SEARCH == 0x8F


# ----------------------------------------------------------------------
# SEARCH request round-trips
# ----------------------------------------------------------------------
def test_plain_search_round_trips():
    payload = protocol.pack_search("compression ratio", top_k=7, snippet_chars=120)
    assert protocol.unpack_search(payload) == (
        "compression ratio",
        7,
        120,
        False,
        None,
    )


def test_stats_only_search_round_trips():
    payload = protocol.pack_search("web archive", stats_only=True)
    query, top_k, snippet_chars, stats_only, global_stats = protocol.unpack_search(
        payload
    )
    assert (query, stats_only, global_stats) == ("web archive", True, None)


def test_global_stats_search_round_trips():
    stats = (1234, 567890, {"web": 100, "archive": 42, "zo/ne": 0})
    payload = protocol.pack_search("web archive", top_k=3, global_stats=stats)
    assert protocol.unpack_search(payload) == ("web archive", 3, 0, False, stats)


def test_unicode_query_round_trips():
    payload = protocol.pack_search("café économie")
    assert protocol.unpack_search(payload)[0] == "café économie"


def test_empty_query_round_trips():
    assert protocol.unpack_search(protocol.pack_search(""))[0] == ""


def test_stats_only_with_global_stats_is_rejected_at_pack():
    with pytest.raises(ProtocolError):
        protocol.pack_search("q", stats_only=True, global_stats=(1, 2, {}))


def test_oversized_query_is_rejected():
    with pytest.raises(ProtocolError):
        protocol.pack_search("x" * (MAX_QUERY_BYTES + 1))


def test_negative_top_k_is_rejected():
    with pytest.raises(ProtocolError):
        protocol.pack_search("q", top_k=-1)
    with pytest.raises(ProtocolError):
        protocol.pack_search("q", snippet_chars=-1)


# ----------------------------------------------------------------------
# Malformed SEARCH payloads
# ----------------------------------------------------------------------
def test_unknown_flags_are_rejected():
    payload = bytearray(protocol.pack_search("q"))
    payload[0] |= 0x80
    with pytest.raises(ProtocolError):
        protocol.unpack_search(bytes(payload))


def test_stats_only_with_globals_on_the_wire_is_rejected():
    # A hand-crafted contradictory frame (both flags set) must not decode.
    payload = bytearray(protocol.pack_search("q", global_stats=(1, 2, {})))
    payload[0] |= protocol.SEARCH_STATS_ONLY
    with pytest.raises(ProtocolError):
        protocol.unpack_search(bytes(payload))


def test_truncated_search_payloads_are_rejected():
    payload = protocol.pack_search("query terms", global_stats=(9, 99, {"a": 1}))
    for cut in (0, 3, protocol._SEARCH_HEAD.size + 1, len(payload) - 1):
        with pytest.raises(ProtocolError):
            protocol.unpack_search(payload[:cut])


def test_trailing_bytes_are_rejected():
    with pytest.raises(ProtocolError):
        protocol.unpack_search(protocol.pack_search("q") + b"\x00")
    with pytest.raises(ProtocolError):
        protocol.unpack_search(
            protocol.pack_search("q", global_stats=(1, 2, {"a": 3})) + b"junk"
        )


# ----------------------------------------------------------------------
# R_SEARCH replies
# ----------------------------------------------------------------------
def test_results_round_trip_with_snippets():
    hits = [
        SearchHit(3, 2.5, b"...budget report...", 140),
        SearchHit(11, 2.5, b"", 0),
        SearchHit(0, 0.25, bytes(range(256)), 7),
    ]
    assert protocol.unpack_search_results(protocol.pack_search_results(hits)) == hits


def test_empty_results_round_trip():
    assert protocol.unpack_search_results(protocol.pack_search_results([])) == []


def test_stats_reply_round_trips():
    stats = (24, 31337, {"web": 12, "archive": 7, "absent": 0})
    assert protocol.unpack_search_stats(protocol.pack_search_stats(*stats)) == stats


def test_stats_reply_with_no_terms_round_trips():
    assert protocol.unpack_search_stats(protocol.pack_search_stats(5, 50, {})) == (
        5,
        50,
        {},
    )


def test_reply_kinds_do_not_cross_decode():
    results = protocol.pack_search_results([SearchHit(1, 1.0)])
    stats = protocol.pack_search_stats(1, 10, {"a": 1})
    with pytest.raises(ProtocolError):
        protocol.unpack_search_results(stats)
    with pytest.raises(ProtocolError):
        protocol.unpack_search_stats(results)
    with pytest.raises(ProtocolError):
        protocol.unpack_search_results(b"")


def test_truncated_results_are_rejected():
    payload = protocol.pack_search_results([SearchHit(1, 1.0, b"snippet", 3)])
    for cut in (1, 4, len(payload) - 3):
        with pytest.raises(ProtocolError):
            protocol.unpack_search_results(payload[:cut])
    with pytest.raises(ProtocolError):
        protocol.unpack_search_results(payload + b"\x00")


def test_truncated_stats_are_rejected():
    payload = protocol.pack_search_stats(2, 20, {"term": 2})
    for cut in (1, 8, len(payload) - 1):
        with pytest.raises(ProtocolError):
            protocol.unpack_search_stats(payload[:cut])
    with pytest.raises(ProtocolError):
        protocol.unpack_search_stats(payload + b"\x00")
