"""Wire-level edge cases: malformed clients, malformed servers, shutdowns.

The server must survive (and cleanly reject) every way a client can
misbehave on the socket, and the client must fail loudly — never hang,
never mis-parse — when the peer violates the protocol.
"""

from __future__ import annotations

import asyncio
import dataclasses
import socket
import struct
import threading
import time

import pytest

from repro import errors
from repro.api import ServeSpec
from repro.errors import ProtocolError
from repro.serve import BackgroundServer, RlzClient, RlzServer, protocol
from repro.serve.client import _recv_exact
from repro.serve.protocol import Opcode


@pytest.fixture()
def live_server(served_archive):
    path, config, _ = served_archive
    config = dataclasses.replace(
        config, serve=ServeSpec(max_frame_bytes=256 * 1024, drain_seconds=0.2)
    )
    with BackgroundServer(path, config) as server:
        yield server


def _raw_handshake(host: str, port: int) -> socket.socket:
    """Handshake as a *version-1* client so the raw frames below stay in
    the legacy framing (v2 edge cases live in test_protocol_v2.py)."""
    raw = socket.create_connection((host, port), timeout=10)
    raw.sendall(
        protocol.encode_frame(Opcode.HELLO, protocol.pack_hello(protocol.PROTOCOL_V1))
    )
    opcode, payload = _read_raw_frame(raw)
    assert opcode == Opcode.R_HELLO
    assert protocol.unpack_hello_reply(payload) == protocol.PROTOCOL_V1
    return raw


def _read_raw_frame(raw: socket.socket):
    length = protocol.frame_length(_recv_exact(raw, 4))
    return protocol.split_frame(_recv_exact(raw, length))


# ----------------------------------------------------------------------
# Server-side edge cases (misbehaving client)
# ----------------------------------------------------------------------
def test_server_survives_truncated_frame(live_server, served_archive):
    _, _, collection = served_archive
    host, port = live_server.address
    raw = _raw_handshake(host, port)
    # Announce a 1000-byte frame, send 3 bytes, hang up.
    raw.sendall(struct.pack("!I", 1000) + b"\x03ab")
    raw.close()
    # The server must shrug and keep serving fresh connections.
    with RlzClient(host, port) as client:
        doc_id = client.doc_ids()[0]
        assert client.get(doc_id) == collection.document_by_id(doc_id).content


def test_server_rejects_oversized_frame(live_server):
    host, port = live_server.address
    raw = _raw_handshake(host, port)
    # Claim a frame bigger than the server's max_frame_bytes (256 KiB).
    raw.sendall(struct.pack("!I", 1 << 20))
    opcode, payload = _read_raw_frame(raw)
    assert opcode == Opcode.R_ERROR
    with pytest.raises(ProtocolError, match="oversized"):
        protocol.raise_error_frame(payload)
    # The connection is closed afterwards: the framing is untrusted.
    raw.settimeout(5)
    try:
        assert raw.recv(1) == b""
    except ConnectionError:
        pass  # reset instead of FIN: also closed
    raw.close()


def test_server_rejects_version_mismatch(live_server):
    # Version 0 is below the minimum; anything above PROTOCOL_VERSION
    # negotiates *down* instead of failing (see test_protocol_v2.py).
    host, port = live_server.address
    raw = socket.create_connection((host, port), timeout=10)
    raw.sendall(
        protocol.encode_frame(Opcode.HELLO, protocol.MAGIC + bytes([0]))
    )
    opcode, payload = _read_raw_frame(raw)
    assert opcode == Opcode.R_ERROR
    with pytest.raises(ProtocolError, match="version mismatch"):
        protocol.raise_error_frame(payload)
    raw.close()


def test_server_rejects_bad_magic(live_server):
    host, port = live_server.address
    raw = socket.create_connection((host, port), timeout=10)
    raw.sendall(protocol.encode_frame(Opcode.HELLO, b"HTTP" + bytes([1])))
    opcode, payload = _read_raw_frame(raw)
    assert opcode == Opcode.R_ERROR
    with pytest.raises(ProtocolError, match="magic"):
        protocol.raise_error_frame(payload)
    raw.close()


def test_server_rejects_request_before_hello(live_server):
    host, port = live_server.address
    raw = socket.create_connection((host, port), timeout=10)
    raw.sendall(protocol.encode_frame(Opcode.GET, protocol.pack_doc_id(0)))
    opcode, payload = _read_raw_frame(raw)
    assert opcode == Opcode.R_ERROR
    with pytest.raises(ProtocolError, match="expected HELLO"):
        protocol.raise_error_frame(payload)
    raw.close()


def test_server_rejects_unknown_opcode(live_server):
    host, port = live_server.address
    raw = _raw_handshake(host, port)
    raw.sendall(protocol.encode_frame(0x42))
    opcode, payload = _read_raw_frame(raw)
    assert opcode == Opcode.R_ERROR
    with pytest.raises(ProtocolError, match="unknown request opcode"):
        protocol.raise_error_frame(payload)
    raw.close()


def test_server_maps_malformed_payload_to_protocol_error(live_server):
    host, port = live_server.address
    raw = _raw_handshake(host, port)
    raw.sendall(protocol.encode_frame(Opcode.GET, b"\x01"))  # not 8 bytes
    opcode, payload = _read_raw_frame(raw)
    assert opcode == Opcode.R_ERROR
    with pytest.raises(ProtocolError, match="malformed doc-id"):
        protocol.raise_error_frame(payload)
    raw.close()


# ----------------------------------------------------------------------
# Error round-tripping end-to-end (server raises -> client re-raises)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "error_class",
    sorted(protocol.ERROR_CODES, key=lambda cls: cls.__name__),
    ids=lambda cls: cls.__name__,
)
def test_every_error_type_roundtrips_over_the_socket(served_archive, error_class):
    path, config, _ = served_archive

    async def main():
        server = RlzServer.open(path, config)
        await server.start()
        try:
            async def raising(doc_id):
                raise error_class(f"server-side {error_class.__name__}")

            server.front.get = raising  # the GET handler awaits this
            client_error = None
            from repro.serve import AsyncRlzClient

            client = AsyncRlzClient(server.host, server.port)
            try:
                await client.get(0)
            except errors.ReproError as exc:
                client_error = exc
            finally:
                await client.close()
            assert client_error is not None
            assert type(client_error) is error_class
            assert f"server-side {error_class.__name__}" in str(client_error)
        finally:
            await server.close()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Shutdown mid-request
# ----------------------------------------------------------------------
def test_server_shutdown_mid_request(served_archive):
    """Graceful close with a short drain window: an in-flight slow request
    is cancelled, the client sees a connection-level failure (not a hang),
    and the server closes cleanly."""
    path, config, _ = served_archive
    config = dataclasses.replace(config, serve=ServeSpec(drain_seconds=0.05))
    server = BackgroundServer(path, config)
    host, port = server.start()
    try:
        front = server._server.front
        real_get = front.archive.get
        started = threading.Event()

        def slow_get(doc_id):
            started.set()
            time.sleep(1.0)
            return real_get(doc_id)

        front._archive.get = slow_get
        client = RlzClient(host, port, retries=0, timeout=10)
        doc_id = client.doc_ids()[0]
        outcome = []

        def request():
            try:
                outcome.append(client.get(doc_id))
            except BaseException as exc:
                outcome.append(exc)

        thread = threading.Thread(target=request)
        thread.start()
        assert started.wait(timeout=10)  # the decode is in flight
    finally:
        stats = server.stop()  # drain window elapses, request cancelled
    thread.join(timeout=10)
    assert not thread.is_alive()
    client.close()
    assert len(outcome) == 1
    # The client must observe a failure (connection dropped or an error
    # frame), never a silent wrong answer.
    assert isinstance(outcome[0], (ConnectionError, OSError, errors.ReproError))
    assert stats["server_connections_total"] >= 1


# ----------------------------------------------------------------------
# Client-side edge cases (misbehaving server)
# ----------------------------------------------------------------------
class _FakeServer:
    """A TCP peer that handshakes correctly, then replies with `script`."""

    def __init__(self, script: bytes, close_after: bool = True) -> None:
        self._script = script
        self._close_after = close_after
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(1)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        conn, _ = self._sock.accept()
        try:
            # Read the HELLO frame (size depends on the client's version),
            # then negotiate *down* to v1 so the scripts below stay in the
            # legacy framing.
            length = protocol.frame_length(_recv_exact(conn, 4))
            _recv_exact(conn, length)
            conn.sendall(
                protocol.encode_frame(
                    Opcode.R_HELLO, protocol.pack_hello_reply(protocol.PROTOCOL_V1)
                )
            )
            # Wait for one request frame, then play the script.
            length = protocol.frame_length(_recv_exact(conn, 4))
            _recv_exact(conn, length)
            conn.sendall(self._script)
            if self._close_after:
                conn.shutdown(socket.SHUT_WR)
                time.sleep(0.1)
        except (ConnectionError, OSError):
            pass
        finally:
            conn.close()
            self._sock.close()

    def join(self) -> None:
        self._thread.join(timeout=10)


def test_client_rejects_truncated_response():
    fake = _FakeServer(struct.pack("!I", 500) + b"\x83abc")  # 500 claimed, 4 sent
    client = RlzClient("127.0.0.1", fake.port, retries=0, timeout=10)
    with pytest.raises((ConnectionError, OSError)):
        client.get(0)
    client.close()
    fake.join()


def test_client_rejects_oversized_response():
    fake = _FakeServer(struct.pack("!I", 1 << 30))
    client = RlzClient(
        "127.0.0.1", fake.port, retries=0, timeout=10, max_frame_bytes=1 << 20
    )
    with pytest.raises(ProtocolError, match="oversized"):
        client.get(0)
    client.close()
    fake.join()


def test_client_rejects_unexpected_reply_opcode():
    fake = _FakeServer(protocol.encode_frame(Opcode.R_PONG))
    client = RlzClient("127.0.0.1", fake.port, retries=0, timeout=10)
    with pytest.raises(ProtocolError, match="expected r_doc"):
        client.get(0)
    client.close()
    fake.join()


def test_client_rejects_server_version_mismatch():
    reply = protocol.encode_frame(Opcode.R_HELLO, protocol.pack_hello_reply(42))

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    sock.listen(1)
    port = sock.getsockname()[1]

    def serve():
        conn, _ = sock.accept()
        try:
            length = protocol.frame_length(_recv_exact(conn, 4))
            _recv_exact(conn, length)
            conn.sendall(reply)
            time.sleep(0.1)
        finally:
            conn.close()
            sock.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    client = RlzClient("127.0.0.1", port, retries=0, timeout=10)
    with pytest.raises(ProtocolError, match="version mismatch"):
        client.get(0)
    client.close()
    thread.join(timeout=10)
