"""Protocol-v2 edge cases: pipelining, negotiation, routing, backpressure.

What version 2 added — request ids with out-of-order replies, the archive
name in HELLO, the SCAN bulk opcode and the R_BUSY load-shedding hint —
and every way those can go wrong: interleaved replies, duplicate ids,
v1 clients against v2 servers, unknown archive names, a client vanishing
mid-pipeline.
"""

from __future__ import annotations

import asyncio
import dataclasses
import socket
import struct
import threading
import time

import pytest

from repro.api import ArchiveConfig, ServeSpec
from repro.errors import ConfigurationError, ProtocolError, StorageError
from repro.serve import BackgroundServer, RlzClient, protocol
from repro.serve.client import _recv_exact
from repro.serve.protocol import Opcode


@pytest.fixture()
def live_server(served_archive):
    path, config, _ = served_archive
    with BackgroundServer(path, config) as server:
        yield server


def _handshake_v2(host: str, port: int, archive: str = "") -> socket.socket:
    # Pin the handshake to v2: these tests speak raw v2 frames, and a v3+
    # server must keep serving v2 clients with v2 framing.
    raw = socket.create_connection((host, port), timeout=10)
    raw.sendall(
        protocol.encode_frame(
            Opcode.HELLO, protocol.pack_hello(protocol.PROTOCOL_V2, archive)
        )
    )
    opcode, payload = _read_v1_frame(raw)
    if opcode == Opcode.R_ERROR:
        raw.close()
        protocol.raise_error_frame(payload)
    assert opcode == Opcode.R_HELLO
    assert protocol.unpack_hello_reply(payload) == protocol.PROTOCOL_V2
    return raw


def _read_v1_frame(raw: socket.socket):
    length = protocol.frame_length(_recv_exact(raw, 4))
    return protocol.split_frame(_recv_exact(raw, length))


def _read_v2_frame(raw: socket.socket):
    length = protocol.frame_length(_recv_exact(raw, 4))
    return protocol.split_frame2(_recv_exact(raw, length))


# ----------------------------------------------------------------------
# Negotiation
# ----------------------------------------------------------------------
def test_v1_client_against_v2_server_round_trips(live_server, served_archive):
    _, _, collection = served_archive
    host, port = live_server.address
    with RlzClient(host, port, protocol_version=1) as client:
        ids = client.doc_ids()
        assert sorted(ids) == sorted(d.doc_id for d in collection)
        for doc_id in ids[:5]:
            assert client.get(doc_id) == collection.document_by_id(doc_id).content
        assert dict(client.iter_documents()) == {
            d.doc_id: d.content for d in collection
        }


def test_raw_v1_hello_negotiates_version_1(live_server):
    host, port = live_server.address
    raw = socket.create_connection((host, port), timeout=10)
    raw.sendall(
        protocol.encode_frame(Opcode.HELLO, protocol.pack_hello(protocol.PROTOCOL_V1))
    )
    opcode, payload = _read_v1_frame(raw)
    assert opcode == Opcode.R_HELLO
    assert protocol.unpack_hello_reply(payload) == protocol.PROTOCOL_V1
    # ...and the connection then really speaks v1 framing.
    raw.sendall(protocol.encode_frame(Opcode.PING, b"hi"))
    opcode, payload = _read_v1_frame(raw)
    assert (opcode, payload) == (Opcode.R_PONG, b"hi")
    raw.close()


def test_futuristic_client_version_negotiates_down(live_server):
    host, port = live_server.address
    raw = socket.create_connection((host, port), timeout=10)
    raw.sendall(
        protocol.encode_frame(Opcode.HELLO, protocol.MAGIC + bytes([75]))
    )
    opcode, payload = _read_v1_frame(raw)
    assert opcode == Opcode.R_HELLO
    assert protocol.unpack_hello_reply(payload) == protocol.PROTOCOL_VERSION
    raw.close()


def test_unknown_archive_name_is_rejected_with_configuration_error(live_server):
    host, port = live_server.address
    with pytest.raises(ConfigurationError, match="unknown archive"):
        _handshake_v2(host, port, archive="no-such-archive")
    # ...and through the real client's dial path too.
    client = RlzClient(host, port, archive="still-not-there", retries=0)
    with pytest.raises(ConfigurationError, match="unknown archive"):
        client.get(0)
    client.close()


# ----------------------------------------------------------------------
# Pipelining
# ----------------------------------------------------------------------
def test_out_of_order_replies_interleave_on_one_connection(served_archive):
    """A slow request must not block a later fast one: the later reply
    arrives first, and both carry the right request id."""
    path, config, collection = served_archive
    server = BackgroundServer(path, config)
    host, port = server.start()
    try:
        front = server._server.front
        doc_ids = sorted(d.doc_id for d in collection)
        slow_id, fast_id = doc_ids[0], doc_ids[1]
        real_get = front.get

        async def slow_get(doc_id):
            if doc_id == slow_id:
                await asyncio.sleep(0.4)
            return await real_get(doc_id)

        front.get = slow_get
        raw = _handshake_v2(host, port)
        raw.sendall(
            protocol.encode_frame2(Opcode.GET, 11, protocol.pack_doc_id(slow_id))
        )
        raw.sendall(
            protocol.encode_frame2(Opcode.GET, 22, protocol.pack_doc_id(fast_id))
        )
        replies = [_read_v2_frame(raw) for _ in range(2)]
        raw.close()
        assert [request_id for _, request_id, _ in replies] == [22, 11]
        by_id = {request_id: payload for _, request_id, payload in replies}
        assert by_id[11] == collection.document_by_id(slow_id).content
        assert by_id[22] == collection.document_by_id(fast_id).content
        assert all(opcode == Opcode.R_DOC for opcode, _, _ in replies)
    finally:
        server.stop()


def test_duplicate_request_id_closes_the_connection(served_archive):
    path, config, collection = served_archive
    server = BackgroundServer(path, config)
    host, port = server.start()
    try:
        front = server._server.front
        real_get = front.get
        release = asyncio.Event()

        async def stuck_get(doc_id):
            await release.wait()
            return await real_get(doc_id)

        front.get = stuck_get
        doc_id = next(iter(collection)).doc_id
        raw = _handshake_v2(host, port)
        # Id 7 is parked in the stuck decode; reusing it while it is in
        # flight makes the correlation ambiguous.
        raw.sendall(protocol.encode_frame2(Opcode.GET, 7, protocol.pack_doc_id(doc_id)))
        raw.sendall(protocol.encode_frame2(Opcode.PING, 7, b""))
        opcode, request_id, payload = _read_v2_frame(raw)
        assert (opcode, request_id) == (Opcode.R_ERROR, 7)
        with pytest.raises(ProtocolError, match="duplicate request id"):
            protocol.raise_error_frame(payload)
        # The connection is closed afterwards.
        raw.settimeout(5)
        try:
            assert raw.recv(1) == b""
        except (ConnectionError, socket.timeout):
            pass
        raw.close()
        server._loop.call_soon_threadsafe(release.set)
        front.get = real_get
        # A reused id is fine once the first request finished.
        raw = _handshake_v2(host, port)
        raw.sendall(protocol.encode_frame2(Opcode.PING, 9, b""))
        assert _read_v2_frame(raw)[0] == Opcode.R_PONG
        raw.sendall(protocol.encode_frame2(Opcode.PING, 9, b""))
        assert _read_v2_frame(raw)[0] == Opcode.R_PONG
        raw.close()
    finally:
        server.stop()


def test_pipelined_get_matches_sequential_and_handles_duplicates(
    live_server, served_archive
):
    _, _, collection = served_archive
    host, port = live_server.address
    expected = {d.doc_id: d.content for d in collection}
    ids = sorted(expected)
    request = list(reversed(ids)) + ids[:5] + [ids[0]] * 3
    with RlzClient(host, port) as client:
        assert client.pipelined_get(request) == [expected[i] for i in request]
        assert client.pipelined_get(request, window=2) == [
            expected[i] for i in request
        ]
        assert client.pipelined_get([]) == []
        with pytest.raises(ProtocolError, match="window"):
            client.pipelined_get(ids, window=0)


def test_pipelined_get_raises_the_archive_error(live_server, served_archive):
    _, _, collection = served_archive
    host, port = live_server.address
    ids = sorted(d.doc_id for d in collection)
    with RlzClient(host, port) as client:
        with pytest.raises(StorageError):
            client.pipelined_get([ids[0], max(ids) + 4242, ids[1]])


def test_client_disconnect_mid_pipeline_leaves_server_serving(
    live_server, served_archive
):
    _, _, collection = served_archive
    host, port = live_server.address
    ids = sorted(d.doc_id for d in collection)
    raw = _handshake_v2(host, port)
    # Queue a burst of requests and vanish without reading a single reply.
    for request_id, doc_id in enumerate(ids, start=1):
        raw.sendall(
            protocol.encode_frame2(Opcode.GET, request_id, protocol.pack_doc_id(doc_id))
        )
    raw.close()
    # The server must shrug: fresh connections serve correct bytes.
    with RlzClient(host, port) as client:
        assert client.get(ids[0]) == collection.document_by_id(ids[0]).content
        assert client.pipelined_get(ids) == [
            collection.document_by_id(i).content for i in ids
        ]


def test_server_shutdown_mid_pipeline_fails_loudly_not_silently(served_archive):
    path, config, collection = served_archive
    config = dataclasses.replace(config, serve=ServeSpec(drain_seconds=0.05))
    server = BackgroundServer(path, config)
    host, port = server.start()
    ids = sorted(d.doc_id for d in collection)
    client = RlzClient(host, port, retries=0, timeout=10)
    outcome = []

    front = server._server.front
    real_get = front.get
    started = threading.Event()

    async def slow_get(doc_id):
        started.set()
        await asyncio.sleep(1.0)
        return await real_get(doc_id)

    front.get = slow_get

    def request():
        try:
            outcome.append(client.pipelined_get(ids[:4]))
        except BaseException as exc:
            outcome.append(exc)

    thread = threading.Thread(target=request)
    thread.start()
    assert started.wait(timeout=10)
    server.stop()
    thread.join(timeout=10)
    assert not thread.is_alive()
    client.close()
    assert len(outcome) == 1
    assert isinstance(outcome[0], (ConnectionError, OSError, ProtocolError))


# ----------------------------------------------------------------------
# SCAN
# ----------------------------------------------------------------------
def test_scan_streams_everything_byte_identical(live_server, served_archive):
    _, _, collection = served_archive
    host, port = live_server.address
    expected = {d.doc_id: d.content for d in collection}
    with RlzClient(host, port) as client:
        assert dict(client.scan()) == expected
        # Tiny chunks exercise the chunk boundaries.
        assert dict(client.scan(chunk_docs=1)) == expected
        assert dict(client.scan(chunk_docs=3)) == expected


def test_scan_subset_preserves_requested_order(live_server, served_archive):
    _, _, collection = served_archive
    host, port = live_server.address
    expected = {d.doc_id: d.content for d in collection}
    ids = sorted(expected)
    subset = list(reversed(ids[:7])) + [ids[0]]
    with RlzClient(host, port) as client:
        items = list(client.scan(subset, chunk_docs=2))
        assert [doc_id for doc_id, _ in items] == subset
        assert all(content == expected[doc_id] for doc_id, content in items)


def test_scan_unknown_doc_raises_storage_error(live_server, served_archive):
    _, _, collection = served_archive
    host, port = live_server.address
    ids = sorted(d.doc_id for d in collection)
    with RlzClient(host, port) as client:
        with pytest.raises(StorageError):
            list(client.scan([ids[0], max(ids) + 999]))
        # The client recovers for the next call.
        assert client.get(ids[0]) == collection.document_by_id(ids[0]).content


def test_iter_documents_rides_scan_on_v2(live_server, served_archive):
    _, _, collection = served_archive
    host, port = live_server.address
    with RlzClient(host, port) as client:
        assert dict(client.iter_documents()) == {
            d.doc_id: d.content for d in collection
        }
    stats = live_server.stats()
    # The v2 iteration used SCAN, not the per-document ITER opcode.
    assert stats.get("server_requests", 0) >= 1


# ----------------------------------------------------------------------
# R_BUSY backpressure
# ----------------------------------------------------------------------
def test_saturated_gate_sheds_v2_requests_with_r_busy(served_archive):
    path, config, collection = served_archive
    config = dataclasses.replace(
        config, serve=ServeSpec(max_inflight=1, max_pipeline=64)
    )
    server = BackgroundServer(path, config)
    host, port = server.start()
    try:
        front = server._server.front
        real_get = front.get
        release = asyncio.Event()

        async def stuck_get(doc_id):
            await release.wait()
            return await real_get(doc_id)

        front.get = stuck_get
        doc_id = next(iter(collection)).doc_id
        raw = _handshake_v2(host, port)
        # One request occupies the gate, one waits, the rest must be shed.
        for request_id in range(1, 9):
            raw.sendall(
                protocol.encode_frame2(
                    Opcode.GET, request_id, protocol.pack_doc_id(doc_id)
                )
            )
        busy_ids = set()
        for _ in range(6):
            opcode, request_id, _ = _read_v2_frame(raw)
            assert opcode == Opcode.R_BUSY
            busy_ids.add(request_id)
        assert len(busy_ids) == 6
        server._loop.call_soon_threadsafe(release.set)
        docs = [_read_v2_frame(raw) for _ in range(2)]
        assert {opcode for opcode, _, _ in docs} == {Opcode.R_DOC}
        raw.close()
        stats = server.stats()
        assert stats["server_busy_rejections"] >= 6
    finally:
        server.stop()


def test_client_retries_r_busy_until_served(served_archive):
    path, config, collection = served_archive
    config = dataclasses.replace(
        config, serve=ServeSpec(max_inflight=1, max_pipeline=256)
    )
    expected = {d.doc_id: d.content for d in collection}
    ids = sorted(expected)
    with BackgroundServer(path, config) as server:
        host, port = server.address
        front = server._server.front
        real_get = front.get

        async def slow_get(doc_id):
            await asyncio.sleep(0.002)
            return await real_get(doc_id)

        front.get = slow_get
        # A wide pipelined window against a one-slot gate: some requests
        # are shed with R_BUSY, the client retries them, every byte lands.
        with RlzClient(host, port, retry_delay=0.01, busy_retries=64) as client:
            request = ids * 3
            assert client.pipelined_get(request, window=32) == [
                expected[i] for i in request
            ]
            assert client.busy_hints > 0


# ----------------------------------------------------------------------
# Connection-level errors and drain behaviour (review regressions)
# ----------------------------------------------------------------------
def test_post_handshake_frame_error_is_v2_framed_with_reserved_id(served_archive):
    """A frame-level violation after a v2 handshake must come back in v2
    framing (request id 0), not v1 framing a compliant client misparses."""
    import dataclasses as _dc
    path, config, _ = served_archive
    config = _dc.replace(config, serve=ServeSpec(max_frame_bytes=64 * 1024))
    with BackgroundServer(path, config) as server:
        host, port = server.address
        raw = _handshake_v2(host, port)
        raw.sendall(struct.pack("!I", 1 << 20))  # oversized frame claim
        opcode, request_id, payload = _read_v2_frame(raw)
        assert (opcode, request_id) == (Opcode.R_ERROR, 0)
        with pytest.raises(ProtocolError, match="oversized"):
            protocol.raise_error_frame(payload)
        raw.close()
        # ...and the real client surfaces the server's actual complaint.
        client = RlzClient(host, port, retries=0, max_frame_bytes=1 << 22)
        with pytest.raises(ProtocolError, match="oversized"):
            client.get_many(list(range(100_000)))  # frame > server's limit
        client.close()


def test_graceful_close_is_prompt_once_v2_requests_drain(served_archive):
    """close() must wait on the in-flight *requests*, not on the pipelined
    connection task (which is parked reading and never finishes alone):
    with a 10s drain window and a 0.2s request, shutdown is sub-second."""
    import dataclasses as _dc
    path, config, collection = served_archive
    config = _dc.replace(config, serve=ServeSpec(drain_seconds=10.0))
    server = BackgroundServer(path, config)
    host, port = server.start()
    doc_id = next(iter(collection)).doc_id
    expected = collection.document_by_id(doc_id).content
    front = server._server.front
    real_get = front.get
    started = threading.Event()

    async def slow_get(requested):
        started.set()
        await asyncio.sleep(0.2)
        return await real_get(requested)

    front.get = slow_get
    raw = _handshake_v2(host, port)
    raw.sendall(protocol.encode_frame2(Opcode.GET, 5, protocol.pack_doc_id(doc_id)))
    assert started.wait(timeout=10)
    start = time.monotonic()
    server.stop()  # drains the 0.2s request, not the whole 10s window
    elapsed = time.monotonic() - start
    assert elapsed < 5.0, elapsed
    # The in-flight request was answered before the connection closed.
    opcode, request_id, payload = _read_v2_frame(raw)
    assert (opcode, request_id, payload) == (Opcode.R_DOC, 5, expected)
    raw.close()
