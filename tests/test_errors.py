"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "DictionaryError",
        "FactorizationError",
        "EncodingError",
        "DecodingError",
        "StorageError",
        "CorpusError",
        "SearchError",
        "BenchmarkError",
        "ProtocolError",
    ):
        error_class = getattr(errors, name)
        assert issubclass(error_class, errors.ReproError)
        assert issubclass(error_class, Exception)


def test_catching_base_class_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.DecodingError("boom")


def test_library_raises_its_own_types_not_bare_exceptions():
    from repro.core import RlzDictionary

    with pytest.raises(errors.DictionaryError):
        RlzDictionary(b"")


def test_wire_codes_globally_unique_and_cover_every_error_class():
    import inspect

    from repro.serve.protocol import ERROR_CODES

    codes = list(ERROR_CODES.values())
    assert len(codes) == len(set(codes)), "duplicate wire codes in ERROR_CODES"
    assert all(isinstance(code, int) and code > 0 for code in codes)

    defined = {
        obj
        for obj in vars(errors).values()
        if inspect.isclass(obj) and issubclass(obj, errors.ReproError)
    }
    assert defined == set(ERROR_CODES), (
        "every repro.errors class needs exactly one wire code "
        "(and no stale registry entries)"
    )


@pytest.mark.parametrize("version", [1, 2, 3, 4, 5])
def test_error_frames_round_trip_every_class_on_every_protocol_version(version):
    from repro.serve import protocol

    assert (protocol.PROTOCOL_V1, protocol.PROTOCOL_VERSION) == (1, 5)
    for error_class in protocol.ERROR_CODES:
        exc = error_class("boom goes the wire")
        payload = protocol.pack_error_for(exc)
        if version == protocol.PROTOCOL_V1:
            frame = protocol.encode_frame(protocol.Opcode.R_ERROR, payload)
            opcode, decoded = protocol.split_frame(frame[4:])
        elif version == protocol.PROTOCOL_V2:
            frame = protocol.encode_frame2(protocol.Opcode.R_ERROR, 7, payload)
            opcode, request_id, decoded = protocol.split_frame2(frame[4:])
            assert request_id == 7
        else:  # v3+ replies: CRC-trailed framing
            frame = protocol.encode_reply3(protocol.Opcode.R_ERROR, 7, payload)
            opcode, request_id, decoded = protocol.split_reply3(frame[4:])
            assert request_id == 7
        assert opcode == protocol.Opcode.R_ERROR
        with pytest.raises(error_class) as exc_info:
            protocol.raise_error_frame(decoded)
        assert type(exc_info.value) is error_class
        assert "boom goes the wire" in str(exc_info.value)
