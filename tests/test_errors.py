"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "DictionaryError",
        "FactorizationError",
        "EncodingError",
        "DecodingError",
        "StorageError",
        "CorpusError",
        "SearchError",
        "BenchmarkError",
        "ProtocolError",
    ):
        error_class = getattr(errors, name)
        assert issubclass(error_class, errors.ReproError)
        assert issubclass(error_class, Exception)


def test_catching_base_class_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.DecodingError("boom")


def test_library_raises_its_own_types_not_bare_exceptions():
    from repro.core import RlzDictionary

    with pytest.raises(errors.DictionaryError):
        RlzDictionary(b"")
