"""End-to-end integration tests across subsystems.

These tests follow the paper's whole pipeline on a miniature collection:
generate a crawl, build a dictionary, compress with RLZ, persist to disk,
build the baselines, generate both access patterns with the search engine,
and verify the relationships the paper's evaluation depends on.
"""

import pytest

from repro.baselines import build_blocked_baseline
from repro.core import DictionaryConfig, RlzCompressor
from repro.corpus import generate_gov_collection, url_sorted
from repro.search import AccessPatterns
from repro.storage import BlockedStore, RlzStore
from repro.bench import measure_retrieval


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Run the full pipeline once and share the artefacts across tests."""
    directory = tmp_path_factory.mktemp("pipeline")
    collection = generate_gov_collection(
        num_documents=40, target_document_size=8 * 1024, seed=21
    )
    compressor = RlzCompressor(
        dictionary_config=DictionaryConfig(size=48 * 1024, sample_size=1024), scheme="ZV"
    )
    compressed = compressor.compress(collection)
    rlz_path = RlzStore.write(compressed, directory / "rlz.repro")
    zlib_path = build_blocked_baseline(collection, directory / "zlib.repro", "zlib", 0.2)
    zlib_perdoc_path = build_blocked_baseline(
        collection, directory / "zlib-perdoc.repro", "zlib", 0.0
    )
    patterns = AccessPatterns(collection, num_requests=150, num_queries=40)
    return {
        "collection": collection,
        "compressed": compressed,
        "rlz_path": rlz_path,
        "zlib_path": zlib_path,
        "zlib_perdoc_path": zlib_perdoc_path,
        "patterns": patterns,
    }


def test_end_to_end_roundtrip(pipeline):
    collection = pipeline["collection"]
    with RlzStore.open(pipeline["rlz_path"]) as store:
        for document in collection:
            assert store.get(document.doc_id) == document.content


def test_rlz_beats_per_document_zlib_on_space(pipeline):
    """The paper's headline comparison at equal random-access granularity.

    Blocked zlib with one document per block (the configuration whose
    retrieval speed is closest to rlz) cannot exploit cross-document
    redundancy, so rlz compresses better.  At the paper's scale rlz also
    beats multi-document blocks; on this miniature collection (where two
    blocks span the whole corpus) that comparison is not meaningful, so the
    benchmark suite covers it instead.
    """
    with RlzStore.open(pipeline["rlz_path"]) as rlz, BlockedStore.open(
        pipeline["zlib_perdoc_path"]
    ) as blocked:
        assert rlz.compression_percent(include_dictionary=False) < blocked.compression_percent()


def test_rlz_random_access_faster_than_blocked(pipeline):
    """Query-log retrieval: rlz decodes one document, blocked decodes a block."""
    requests = pipeline["patterns"].query_log
    with RlzStore.open(pipeline["rlz_path"]) as rlz:
        rlz_rate = measure_retrieval(rlz, requests).docs_per_second
    with BlockedStore.open(pipeline["zlib_path"]) as blocked:
        blocked_rate = measure_retrieval(blocked, requests).docs_per_second
    assert rlz_rate > blocked_rate


def test_sequential_faster_than_query_log_for_rlz(pipeline):
    patterns = pipeline["patterns"]
    with RlzStore.open(pipeline["rlz_path"]) as store:
        sequential = measure_retrieval(store, patterns.sequential).docs_per_second
        query_log = measure_retrieval(store, patterns.query_log).docs_per_second
    assert sequential > query_log


def test_url_sorting_does_not_hurt_rlz_compression(pipeline):
    """Section 3.5: uniform sampling makes rlz insensitive to page order."""
    collection = pipeline["collection"]
    sorted_collection = url_sorted(collection)
    config = DictionaryConfig(size=48 * 1024, sample_size=1024)
    crawl = RlzCompressor(dictionary_config=config, scheme="ZV").compress(collection)
    ordered = RlzCompressor(dictionary_config=config, scheme="ZV").compress(sorted_collection)
    difference = abs(
        crawl.compression_ratio(include_dictionary=False)
        - ordered.compression_ratio(include_dictionary=False)
    )
    assert difference < 2.0


def test_compressed_collection_survives_store_roundtrip(pipeline, tmp_path):
    """Writing and re-opening must not change a single encoded byte."""
    compressed = pipeline["compressed"]
    path = tmp_path / "again.repro"
    RlzStore.write(compressed, path)
    with RlzStore.open(path) as store:
        for document in compressed.documents:
            assert store.get(document.doc_id) == compressed.decode_document(document.doc_id)
