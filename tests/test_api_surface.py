"""API-surface snapshot: accidental export removals must fail the build.

These sets are the *intended* public surface.  If you remove or rename an
export on purpose, update the snapshot here in the same change (and note it
in CHANGES.md); if this test fails and you did not intend an API change,
the change is a regression.
"""

from __future__ import annotations

import repro
import repro.api
import repro.serve
import repro.storage

TOP_LEVEL_EXPORTS = {
    # facade
    "ArchiveConfig",
    "ArchiveView",
    "AsyncArchiveView",
    "AsyncRlzArchive",
    "CacheSpec",
    "DictionarySpec",
    "EncodingSpec",
    "ParallelSpec",
    "PartitionSpec",
    "RlzArchive",
    "ServeSpec",
    # network serving
    "AsyncClusterClient",
    "AsyncRlzClient",
    "BackgroundServer",
    "ClusterClient",
    "RlzClient",
    "RlzRouter",
    "RlzServer",
    "ShardMap",
    # cache tiers
    "CacheTier",
    "LruCache",
    "NullCache",
    "SharedMemoryCache",
    # core pipeline
    "CompressedCollection",
    "CompressionReport",
    "DictionaryConfig",
    "Factor",
    "Factorization",
    "PairEncoder",
    "RlzCompressor",
    "RlzDictionary",
    "RlzFactorizer",
    "RlzStore",
    "SuffixArray",
    "build_dictionary",
    # corpus
    "Document",
    "DocumentCollection",
    "generate_gov_collection",
    "generate_wikipedia_collection",
    "url_sorted",
    # errors
    "BenchmarkError",
    "ConfigurationError",
    "CorpusError",
    "CorruptArchiveError",
    "DeadlineExceededError",
    "DecodingError",
    "DictionaryError",
    "EncodingError",
    "FactorizationError",
    "ProtocolError",
    "ReproError",
    "SearchError",
    "ServerBusyError",
    "StorageError",
    "StoreClosedError",
    "WrongShardError",
    # metadata
    "__version__",
}

API_EXPORTS = {
    "ArchiveConfig",
    "ArchiveStats",
    "ArchiveView",
    "AsyncArchiveView",
    "AsyncRlzArchive",
    "CacheSpec",
    "DeadlineSpec",
    "DictionarySpec",
    "EncodingSpec",
    "ParallelSpec",
    "PartitionSpec",
    "RequestStats",
    "RetrySpec",
    "RlzArchive",
    "SearchSpec",
    "ServeSpec",
}

SERVE_EXPORTS = {
    "AsyncClusterClient",
    "AsyncRlzClient",
    "BackgroundServer",
    "CircuitBreaker",
    "ClusterClient",
    "ConnectionStats",
    "Deadline",
    "ERROR_CODES",
    "MAGIC",
    "Opcode",
    "PROTOCOL_V1",
    "PROTOCOL_V2",
    "PROTOCOL_V3",
    "PROTOCOL_V4",
    "PROTOCOL_V5",
    "PROTOCOL_VERSION",
    "RebalanceReport",
    "RetryBudget",
    "RlzClient",
    "RlzRouter",
    "RlzServer",
    "SearchHit",
    "ShardMap",
    "build_partitioned_archives",
    "rebalance",
    "write_spare_shard",
}

STORAGE_EXPORTS = {
    "BlockedStore",
    "BlockedStoreConfig",
    "CacheTier",
    "ContainerHeader",
    "DiskAccounting",
    "DiskModel",
    "DocumentEntry",
    "DocumentMap",
    "LruCache",
    "NullCache",
    "PartitionManifest",
    "RawStore",
    "RlzStore",
    "SharedMemoryCache",
    "read_container_header",
    "verify_container",
    "write_container",
}


def _assert_surface(module, expected):
    exported = set(module.__all__)
    missing = expected - exported
    unexpected = exported - expected
    assert not missing, f"{module.__name__} lost exports: {sorted(missing)}"
    assert not unexpected, (
        f"{module.__name__} grew exports not in the snapshot: "
        f"{sorted(unexpected)} (update tests/test_api_surface.py deliberately)"
    )
    for name in expected:
        assert hasattr(module, name), f"{module.__name__}.{name} is in __all__ but absent"


def test_top_level_surface():
    _assert_surface(repro, TOP_LEVEL_EXPORTS)


def test_api_package_surface():
    _assert_surface(repro.api, API_EXPORTS)


def test_storage_package_surface():
    _assert_surface(repro.storage, STORAGE_EXPORTS)


def test_serve_package_surface():
    _assert_surface(repro.serve, SERVE_EXPORTS)


def test_no_duplicate_exports():
    for module in (repro, repro.api, repro.serve, repro.storage):
        assert len(module.__all__) == len(set(module.__all__)), module.__name__
