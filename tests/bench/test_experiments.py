"""Smoke and shape tests for the experiment implementations.

These run the experiment functions on deliberately tiny collections (not the
benchmark-scale ones) so the whole file stays fast; the full-scale runs live
in ``benchmarks/``.
"""

import pytest

from repro.bench import (
    BenchScale,
    acceleration_ablation_table,
    baseline_retrieval_table,
    codec_ablation_table,
    dictionary_statistics_table,
    dynamic_update_table,
    length_histogram_figure,
    rlz_retrieval_table,
    sampling_policy_ablation_table,
)
from repro.bench.harness import EXPERIMENTS
from repro.search import AccessPatterns


TINY = BenchScale(
    name="unit-test",
    gov_documents=16,
    gov_document_size=4096,
    wiki_documents=6,
    wiki_document_size=8192,
    dictionary_sizes={"2.0": 24 * 1024, "1.0": 12 * 1024, "0.5": 6 * 1024},
    num_requests=60,
    num_queries=20,
    block_sizes_mb=(0.0, 0.1),
)


@pytest.fixture(scope="module")
def patterns(gov_small):
    return AccessPatterns(gov_small, num_requests=60, num_queries=20)


def test_experiment_registry_covers_every_table_and_figure():
    expected = {f"table{i}" for i in range(2, 11)} | {"figure3"}
    assert expected <= set(EXPERIMENTS)


def test_dictionary_statistics_trends(gov_small):
    table = dictionary_statistics_table(
        gov_small, "unit", scale=TINY, sample_sizes_kb=(0.5, 2.0)
    )
    assert len(table.rows) == 6  # 3 dictionary sizes x 2 sample sizes
    factors = table.column("Avg.Fact.")
    # Larger dictionaries (listed first) should give factors at least as long
    # as the smallest dictionary, matching the paper's Table 2 trend.
    assert max(factors[:2]) >= min(factors[-2:])
    unused = table.column("Unused (%)")
    assert all(0.0 <= value <= 100.0 for value in unused)


def test_length_histogram_shape(gov_small):
    table = length_histogram_figure(gov_small, scale=TINY, sample_sizes=(512, 2048))
    assert len(table.rows) == 2
    for row in table.rows:
        small = row[2] + row[3]  # [1,10) + [10,100)
        huge = row[5] + row[6]
        assert small > huge


def test_rlz_retrieval_table_shape(gov_small, patterns):
    table = rlz_retrieval_table(
        gov_small,
        "unit rlz",
        scale=TINY,
        schemes=("ZZ", "UV"),
        dictionary_labels=("1.0",),
        patterns=patterns,
    )
    assert len(table.rows) == 2
    enc = dict(zip(table.column("Pos-Len"), table.column("Enc. (%)")))
    assert enc["ZZ"] < enc["UV"]  # ZZ compresses better
    for rate in table.column("Sequential") + table.column("Query Log"):
        assert rate > 0
    sequential = table.column("Sequential")
    query = table.column("Query Log")
    assert all(s > q for s, q in zip(sequential, query))


def test_baseline_retrieval_table_shape(gov_small, patterns):
    table = baseline_retrieval_table(
        gov_small, "unit baselines", scale=TINY, compressors=("zlib",), patterns=patterns
    )
    # ascii + 2 block sizes
    assert len(table.rows) == 3
    enc = table.column("Enc. (%)")
    assert enc[0] == 100.0
    assert enc[2] <= enc[1]  # larger blocks compress at least as well


def test_dynamic_update_table_shape(gov_small):
    table = dynamic_update_table(gov_small, scale=TINY, prefixes=(1.0, 0.5, 0.1))
    assert [round(p) for p in table.column("Prefix %")] == [100, 50, 10]
    values = table.column("Encoding %")
    assert max(values) - min(values) < 20.0


def test_acceleration_ablation_reports_identical_parses(gov_small):
    table = acceleration_ablation_table(gov_small, scale=TINY, sample_documents=4)
    assert any("parses identical across modes: True" in note for note in table.notes)


def test_codec_ablation_orders_paper_schemes(gov_small):
    table = codec_ablation_table(gov_small, scale=TINY, schemes=("ZZ", "UV"))
    enc = dict(zip(table.column("Scheme"), table.column("Enc. (%)")))
    assert enc["ZZ"] < enc["UV"]


def test_sampling_policy_ablation(gov_small):
    table = sampling_policy_ablation_table(gov_small, scale=TINY)
    assert set(table.column("Policy")) == {"uniform", "random_documents"}


def test_pruning_ablation(gov_small):
    from repro.bench import pruning_ablation_table

    table = pruning_ablation_table(gov_small, scale=TINY, passes=1)
    assert len(table.rows) == 2
    labels = table.column("Dictionary")
    assert labels[0].startswith("single-pass")
    assert labels[1].startswith("resampled")
