"""Smoke tests for the serving-front benchmark."""

from __future__ import annotations

import json

from repro.bench.harness import EXPERIMENTS
from repro.bench.serving import serving_benchmark


def test_serving_benchmark_verifies_and_records(gov_small, tmp_path):
    json_path = tmp_path / "serving.json"
    table = serving_benchmark(
        collection=gov_small,
        clients=3,
        serving_repeats=2,
        cache_capacity=8,
        output_json=json_path,
    )
    notes = "\n".join(table.notes)
    assert "served bytes verified against corpus: True" in notes

    pipelines = [row[0] for row in table.rows]
    assert "serve/sequential" in pipelines
    assert "serve/sequential-cache" in pipelines
    assert "serve/async-3-clients" in pipelines

    records = json.loads(json_path.read_text())
    record = records[-1]
    assert record["benchmark"] == "fastpath-serving"
    assert record["verified"] == {
        "sequential_ok": True,
        "cached_identical": True,
        "async_identical": True,
    }
    assert record["serve"]["async_requests_per_s"] > 0


def test_serving_experiment_registered():
    assert "fastpath-serving" in EXPERIMENTS
