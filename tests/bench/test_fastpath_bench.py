"""Smoke tests for the fast-path throughput benchmark."""

import json

import pytest

from repro.bench.fastpath import fastpath_benchmark
from repro.bench.harness import EXPERIMENTS


@pytest.fixture(scope="module")
def bench_table(tmp_path_factory, gov_small):
    json_path = tmp_path_factory.mktemp("fastpath") / "fastpath.json"
    table = fastpath_benchmark(
        collection=gov_small,
        serving_repeats=2,
        rounds=1,
        output_json=json_path,
    )
    return table, json_path


def test_benchmark_verifies_parse_and_roundtrip(bench_table):
    table, _ = bench_table
    notes = "\n".join(table.notes)
    assert "byte-identical to seed: True" in notes
    assert "parallel blobs identical to serial: True" in notes
    assert "round-trip verified against corpus: True" in notes
    assert "served bytes verified against corpus: True" in notes


def test_benchmark_rows_cover_both_directions(bench_table):
    table, _ = bench_table
    pipelines = [row[0] for row in table.rows]
    assert "encode/seed" in pipelines
    assert "encode/fast" in pipelines
    assert "decode/seed-serving" in pipelines
    assert "decode/fast-serving" in pipelines


def test_benchmark_json_record(bench_table):
    _, json_path = bench_table
    history = json.loads(json_path.read_text())
    assert isinstance(history, list) and len(history) == 1
    record = history[0]
    assert record["benchmark"] == "fastpath"
    assert record["verified"]["streams_identical"] is True
    assert record["verified"]["roundtrip_ok"] is True
    assert record["encode"]["speedup"] > 0
    assert record["decode"]["speedup"] > 0


def test_benchmark_json_appends(tmp_path, gov_small):
    json_path = tmp_path / "fastpath.json"
    for _ in range(2):
        fastpath_benchmark(
            collection=gov_small, serving_repeats=2, rounds=1, output_json=json_path
        )
    assert len(json.loads(json_path.read_text())) == 2


def test_fastpath_registered_as_experiment():
    assert "fastpath" in EXPERIMENTS
    assert "fastpath-large-dict" in EXPERIMENTS


def test_large_dictionary_benchmark_rejects_gated_sizes():
    """The experiment exists to exercise dictionaries above the old 1 MiB
    jump-start gate; sizes at or below it must be refused loudly."""
    from repro.bench.fastpath import large_dictionary_benchmark

    with pytest.raises(ValueError, match="1 MiB"):
        large_dictionary_benchmark(dictionary_bytes=1 << 20)
    with pytest.raises(ValueError, match="1 MiB"):
        large_dictionary_benchmark(dictionary_bytes=4096)


def test_large_dictionary_benchmark_rejects_small_collections(gov_small):
    """A caller-supplied collection that cannot yield a >1 MiB dictionary is
    an error, not a silently smaller experiment."""
    from repro.bench.fastpath import large_dictionary_benchmark

    if gov_small.total_size > (1 << 20) + (1 << 18):
        pytest.skip("fixture collection large enough to sample the dictionary")
    with pytest.raises(ValueError, match="too small"):
        large_dictionary_benchmark(
            collection=gov_small, dictionary_bytes=(1 << 20) + (1 << 18)
        )
