"""Tests for the open-loop load harness."""

import json

import pytest

from repro.bench.loadgen import LOAD_SCALES, LoadScale, load_benchmark, load_scale
from repro.corpus import generate_gov_collection


def test_load_scale_lookup():
    assert load_scale("tiny").name == "tiny"
    assert load_scale("small").corpus_bytes >= 100 * 1000 * 1000
    assert load_scale("medium").corpus_bytes >= 1000 * 1000 * 1000
    with pytest.raises(ValueError, match="unknown load scale"):
        load_scale("galactic")


def test_scales_are_ordered():
    assert (
        LOAD_SCALES["tiny"].corpus_bytes
        < LOAD_SCALES["small"].corpus_bytes
        < LOAD_SCALES["medium"].corpus_bytes
    )


def test_load_benchmark_short_run(tmp_path):
    """A short open-loop run completes every request, verifies every byte,
    and appends a well-formed record."""
    scale = LoadScale("test", 12, 4 * 1024, 64 * 1024, 512, 250.0, 50)
    collection = generate_gov_collection(
        num_documents=scale.num_documents,
        target_document_size=scale.document_bytes,
        seed=11,
    )
    output = tmp_path / "load.json"
    table = load_benchmark(scale=scale, collection=collection, output_json=output)

    record = table.record
    assert record["benchmark"] == "load"
    assert record["scale"] == "test"
    assert record["errors"] == 0
    assert record["completed"] == record["requests"] == 50
    assert record["offered_rps"] == 250.0
    assert record["achieved_rps"] > 0
    assert record["bytes_served"] > 0
    latency = record["latency_ms"]
    assert 0 < latency["p50"] <= latency["p99"] <= latency["p999"] <= latency["max"]
    assert record["server"]["server_requests"] == 50

    history = json.loads(output.read_text())
    assert history[-1] == record


def test_load_benchmark_rejects_bad_parameters():
    with pytest.raises(ValueError, match="rate must be positive"):
        load_benchmark(scale="tiny", rate=0)
    with pytest.raises(ValueError, match="requests must be positive"):
        load_benchmark(scale="tiny", requests=-1)
