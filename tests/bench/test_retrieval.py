"""Tests for retrieval-rate measurement."""

import pytest

from repro.bench import measure_retrieval
from repro.storage import RawStore, RlzStore


@pytest.fixture()
def rlz_store(tmp_path, gov_compressed):
    path = tmp_path / "m.repro"
    RlzStore.write(gov_compressed, path)
    with RlzStore.open(path) as store:
        yield store


def test_measurement_counts_and_rates(rlz_store, gov_small):
    requests = gov_small.doc_ids()[:10]
    measurement = measure_retrieval(rlz_store, requests)
    assert measurement.requests == 10
    assert measurement.bytes_retrieved == sum(gov_small[i].size for i in range(10))
    assert measurement.cpu_seconds > 0
    assert measurement.io_seconds > 0
    assert measurement.total_seconds == pytest.approx(
        measurement.cpu_seconds + measurement.io_seconds
    )
    assert measurement.docs_per_second > 0
    assert measurement.cpu_docs_per_second >= measurement.docs_per_second


def test_sequential_faster_than_random(tmp_path, gov_small):
    """The shape behind the paper's sequential vs query-log gap."""
    path = RawStore.build(gov_small, tmp_path / "raw.repro")
    ids = gov_small.doc_ids()
    with RawStore.open(path) as store:
        sequential = measure_retrieval(store, ids * 4)
    with RawStore.open(path) as store:
        scattered = measure_retrieval(store, (ids[::3] + ids[::-1] + ids[1::2]) * 2)
    assert sequential.io_seconds / sequential.requests < scattered.io_seconds / scattered.requests
