"""Tests for result tables."""

import pytest

from repro.bench import ResultTable


def test_add_row_and_column_access():
    table = ResultTable("Demo", ["A", "B"])
    table.add_row("x", 1.5)
    table.add_row("y", 2.0)
    assert table.column("A") == ["x", "y"]
    assert table.column("B") == [1.5, 2.0]


def test_row_width_checked():
    table = ResultTable("Demo", ["A", "B"])
    with pytest.raises(ValueError):
        table.add_row("only one")


def test_render_contains_headers_values_and_notes():
    table = ResultTable("Table X: demo", ["Name", "Value"])
    table.add_row("alpha", 1234)
    table.add_note("a note")
    rendered = table.render()
    assert "Table X: demo" in rendered
    assert "Name" in rendered and "Value" in rendered
    assert "1,234" in rendered
    assert "note: a note" in rendered


def test_save_appends(tmp_path):
    table = ResultTable("T", ["C"])
    table.add_row(1)
    target = tmp_path / "out" / "results.txt"
    table.save(target)
    table.save(target)
    content = target.read_text()
    assert content.count("T\n=") == 2


def test_merge_renders_all():
    a = ResultTable("First", ["X"])
    a.add_row(1)
    b = ResultTable("Second", ["Y"])
    b.add_row(2)
    merged = ResultTable.merge("All results", [a, b])
    assert "First" in merged and "Second" in merged and "All results" in merged
