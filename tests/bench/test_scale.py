"""Tests for the benchmark scale configuration."""

import pytest

from repro.bench.scale import PAPER_DICTIONARY_LABELS, PAPER_SAMPLE_SIZES, current_scale


def test_default_scale_is_small(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    assert current_scale().name == "small"


@pytest.mark.parametrize("name", ["tiny", "small", "medium", "large"])
def test_all_scales_resolve(monkeypatch, name):
    monkeypatch.setenv("REPRO_BENCH_SCALE", name)
    scale = current_scale()
    assert scale.name == name
    assert scale.gov_total_size > 0
    assert scale.wiki_total_size > 0
    # Every paper dictionary label must be mapped.
    assert set(PAPER_DICTIONARY_LABELS) <= set(scale.dictionary_sizes)


def test_dictionary_sizes_ordered_like_paper(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
    sizes = current_scale().dictionary_sizes
    assert sizes["2.0"] > sizes["1.0"] > sizes["0.5"]


def test_dictionaries_remain_small_fraction(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
    scale = current_scale()
    assert scale.dictionary_sizes["2.0"] < scale.gov_total_size / 4


def test_unknown_scale_rejected(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
    with pytest.raises(ValueError):
        current_scale()


def test_paper_constants():
    assert PAPER_DICTIONARY_LABELS == ("2.0", "1.0", "0.5")
    assert tuple(PAPER_SAMPLE_SIZES) == (0.5, 1.0, 2.0, 5.0)
