"""Tests for the top-level benchmark harness."""

import pytest

from repro.bench import ResultTable
from repro.bench.harness import EXPERIMENTS, run_all, run_experiment


def test_registry_ids_are_well_formed():
    for name, factory in EXPERIMENTS.items():
        assert name == name.lower()
        assert callable(factory)


def test_unknown_experiment_raises():
    with pytest.raises(KeyError):
        run_experiment("table99")


def test_run_all_with_stub_experiments(monkeypatch, tmp_path, capsys):
    """run_all should execute each requested experiment, echo and persist it."""
    calls = []

    def make_stub(name):
        def stub():
            calls.append(name)
            table = ResultTable(f"Stub {name}", ["Value"])
            table.add_row(1)
            return table

        return stub

    monkeypatch.setitem(EXPERIMENTS, "stub-a", make_stub("a"))
    monkeypatch.setitem(EXPERIMENTS, "stub-b", make_stub("b"))
    output = tmp_path / "results.txt"
    tables = run_all(output_path=output, experiments=["stub-a", "stub-b"])
    assert calls == ["a", "b"]
    assert len(tables) == 2
    assert all(any("benchmark scale" in note for note in table.notes) for table in tables)
    text = output.read_text()
    assert "Stub a" in text and "Stub b" in text
    assert "Stub a" in capsys.readouterr().out


def test_run_all_without_echo_or_output(monkeypatch):
    monkeypatch.setitem(
        EXPERIMENTS, "stub-quiet", lambda: ResultTable("Quiet", ["X"])
    )
    tables = run_all(experiments=["stub-quiet"], echo=False)
    assert len(tables) == 1
