"""Tests for the command-line entry points."""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import (
    bench_main,
    compress_main,
    corpus_main,
    get_main,
    main,
    serve_bench_main,
    verify_main,
)


def test_corpus_and_compress_roundtrip(tmp_path, capsys):
    warc = tmp_path / "mini.warc"
    assert corpus_main([str(warc), "--kind", "gov", "--documents", "8", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "wrote 8 documents" in out

    container = tmp_path / "mini.repro"
    status = compress_main(
        [
            str(warc),
            str(container),
            "--method",
            "rlz",
            "--scheme",
            "ZV",
            "--dictionary-size",
            str(16 * 1024),
            "--verify",
        ]
    )
    assert status == 0
    out = capsys.readouterr().out
    assert "all documents round-tripped" in out
    assert container.exists()


def test_corpus_url_sort_and_wikipedia(tmp_path, capsys):
    warc = tmp_path / "wiki.warc"
    assert (
        corpus_main(
            [str(warc), "--kind", "wikipedia", "--documents", "3", "--url-sort"]
        )
        == 0
    )
    assert warc.exists()


@pytest.mark.parametrize("method", ["zlib", "lzma", "ascii"])
def test_compress_baselines(tmp_path, method, capsys):
    warc = tmp_path / "c.warc"
    corpus_main([str(warc), "--documents", "6", "--seed", "1"])
    container = tmp_path / f"c-{method}.repro"
    assert (
        compress_main(
            [str(warc), str(container), "--method", method, "--block-size", "0.1", "--verify"]
        )
        == 0
    )


def test_compress_with_workers(tmp_path, capsys):
    warc = tmp_path / "w.warc"
    corpus_main([str(warc), "--documents", "6", "--seed", "2"])
    container = tmp_path / "w.repro"
    status = compress_main(
        [
            str(warc),
            str(container),
            "--dictionary-size",
            str(16 * 1024),
            "--workers",
            "2",
            "--verify",
        ]
    )
    assert status == 0
    assert "all documents round-tripped" in capsys.readouterr().out


def test_compress_with_spawn_shared_memory_and_jump_index(tmp_path, capsys):
    warc = tmp_path / "s.warc"
    corpus_main([str(warc), "--documents", "6", "--seed", "2"])
    container = tmp_path / "s.repro"
    status = compress_main(
        [
            str(warc),
            str(container),
            "--dictionary-size",
            str(16 * 1024),
            "--workers",
            "2",
            "--start-method",
            "spawn",
            "--share-memory",
            "--jump-index",
            "compact",
            "--verify",
        ]
    )
    assert status == 0
    assert "all documents round-tripped" in capsys.readouterr().out


def test_compress_rejects_negative_workers(tmp_path):
    warc = tmp_path / "n.warc"
    corpus_main([str(warc), "--documents", "3", "--seed", "2"])
    with pytest.raises(SystemExit):
        compress_main([str(warc), str(tmp_path / "n.repro"), "--workers", "-1"])


def test_main_dispatches_subcommands(tmp_path, capsys):
    warc = tmp_path / "m.warc"
    assert main(["corpus", str(warc), "--documents", "3"]) == 0
    assert warc.exists()
    assert main(["no-such-command"]) == 2
    assert main(["--help"]) == 0
    assert "usage: repro" in capsys.readouterr().out


def test_serve_bench_runs_and_appends_json(tmp_path, capsys, monkeypatch):
    import json

    monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
    output = tmp_path / "serve.txt"
    json_path = tmp_path / "serving.json"
    status = main(
        [
            "serve-bench",
            "--clients",
            "2",
            "--repeats",
            "2",
            "--cache-capacity",
            "16",
            "--output",
            str(output),
            "--output-json",
            str(json_path),
        ]
    )
    assert status == 0
    assert "serve/async-2-clients" in output.read_text()
    records = json.loads(json_path.read_text())
    assert records[-1]["benchmark"] == "fastpath-serving"


def test_serve_bench_rejects_bad_arguments():
    with pytest.raises(SystemExit):
        serve_bench_main(["--clients", "0"])
    with pytest.raises(SystemExit):
        serve_bench_main(["--repeats", "-1"])


@pytest.fixture()
def built_container(tmp_path):
    warc = tmp_path / "serve.warc"
    corpus_main([str(warc), "--documents", "8", "--seed", "5"])
    container = tmp_path / "serve.repro"
    compress_main(
        [str(warc), str(container), "--dictionary-size", str(16 * 1024)]
    )
    return container


def test_get_local_archive(built_container, capsys):
    from repro.storage import RlzStore

    store = RlzStore.open(built_container)
    doc_ids = store.doc_ids()[:3]
    store.close()
    status = get_main([str(built_container)] + [str(d) for d in doc_ids])
    assert status == 0
    out = capsys.readouterr().out
    for doc_id in doc_ids:
        assert f"doc {doc_id}:" in out


def test_get_requires_exactly_one_target(built_container, capsys):
    with pytest.raises(SystemExit):
        get_main(["1"])  # one positional: doc id, but no archive/--connect
    with pytest.raises(SystemExit):
        get_main([str(built_container), "--connect", "x:1", "1"])  # both
    with pytest.raises(SystemExit):
        get_main(["--connect", "not-an-address", "1"])
    # A positional that is not a readable archive fails cleanly, not with
    # a traceback.
    assert get_main(["no-such-archive.rlz", "2"]) == 1
    assert "cannot open" in capsys.readouterr().err


def test_get_reports_missing_document(built_container, capsys):
    assert get_main([str(built_container), "99999"]) == 1
    assert "repro get:" in capsys.readouterr().err


def test_verify_reports_ok_then_catches_a_flipped_byte(built_container, capsys):
    assert verify_main([str(built_container)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "verified" in out
    # One flipped payload byte must flip the verdict (and the exit code).
    data = bytearray(built_container.read_bytes())
    data[-3] ^= 0x01
    built_container.write_bytes(bytes(data))
    assert verify_main([str(built_container)]) == 1
    assert "CORRUPT" in capsys.readouterr().err


def test_verify_handles_missing_and_mixed_paths(built_container, capsys):
    # A good file plus a missing one: the good one still reports, exit is 1.
    assert verify_main([str(built_container), "no-such-file.repro"]) == 1
    captured = capsys.readouterr()
    assert "OK" in captured.out
    assert "cannot verify" in captured.err
    assert main(["verify", str(built_container)]) == 0  # dispatcher wiring
    capsys.readouterr()


def test_serve_and_get_connect_end_to_end(built_container, tmp_path):
    """`repro serve` in a subprocess, `repro get --connect` against it,
    SIGINT shuts it down cleanly (exit 0, shutdown summary printed)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(filter(None, [src, env.get("PYTHONPATH")]))
    server = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "from repro.cli import main; import sys; "
            "sys.exit(main(sys.argv[1:]))",
            "serve",
            str(built_container),
            "--cache",
            "lru",
            "--cache-capacity",
            "32",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        banner = server.stdout.readline()
        assert "serving" in banner, banner
        address = banner.split(" on ")[1].split()[0]
        host, port = address.rsplit(":", 1)

        from repro.serve import RlzClient

        with RlzClient(host, int(port)) as client:
            doc_ids = client.doc_ids()
            assert client.get_many(doc_ids) == [client.get(d) for d in doc_ids]

        # `repro get --connect` in-process against the live server.
        assert get_main(["--connect", f"{host}:{port}", str(doc_ids[0])]) == 0

        server.send_signal(signal.SIGINT)
        stdout, stderr = server.communicate(timeout=30)
        assert server.returncode == 0, stderr
        assert "shutdown:" in stdout
    finally:
        if server.poll() is None:
            server.kill()
            server.communicate(timeout=10)


def test_bench_main_runs_selected_experiment(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
    output = tmp_path / "results.txt"
    assert bench_main(["ablation-sampling", "--output", str(output)]) == 0
    assert output.exists()
    assert "Ablation" in output.read_text()
