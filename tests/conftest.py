"""Shared fixtures for the test suite.

Collections used by tests are deliberately tiny (tens of documents of a few
kilobytes) so the whole suite runs in well under a minute; the benchmark
suite under ``benchmarks/`` is where realistic sizes are exercised.
"""

from __future__ import annotations

import pytest

from repro.core import DictionaryConfig, RlzCompressor, build_dictionary
from repro.corpus import generate_gov_collection, generate_wikipedia_collection


@pytest.fixture(scope="session")
def gov_small():
    """A small GOV2-like collection shared (read-only) across tests."""
    return generate_gov_collection(num_documents=24, target_document_size=6 * 1024, seed=11)


@pytest.fixture(scope="session")
def wiki_small():
    """A small Wikipedia-like collection shared (read-only) across tests."""
    return generate_wikipedia_collection(
        num_documents=10, target_document_size=12 * 1024, seed=5
    )


@pytest.fixture(scope="session")
def gov_dictionary(gov_small):
    """A 32 KB uniform-sampled dictionary over the small .gov collection."""
    return build_dictionary(gov_small, DictionaryConfig(size=32 * 1024, sample_size=512))


@pytest.fixture(scope="session")
def gov_compressed(gov_small, gov_dictionary):
    """The small .gov collection compressed with the ZV scheme."""
    compressor = RlzCompressor(dictionary=gov_dictionary, scheme="ZV")
    return compressor.compress(gov_small)
