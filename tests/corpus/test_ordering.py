"""Tests for collection orderings (URL sort, crawl order, shuffle)."""

from repro.corpus import (
    Document,
    DocumentCollection,
    crawl_order,
    shuffled,
    url_sort_key,
    url_sorted,
)


def make_collection():
    return DocumentCollection(
        [
            Document(0, "http://www.zeta.gov/a/page0.html", b"zeta a"),
            Document(1, "http://www.alpha.gov/b/page1.html", b"alpha b"),
            Document(2, "http://www.zeta.gov/a/page2.html", b"zeta a2"),
            Document(3, "http://portal.alpha.gov/c/page3.html", b"alpha portal"),
        ],
        name="ordering-test",
    )


def test_url_sort_clusters_hosts():
    ordered = url_sorted(make_collection())
    hosts = [document.host for document in ordered]
    # All alpha.gov hosts come before zeta.gov, and pages of the same host
    # are adjacent.
    assert hosts == sorted(hosts, key=lambda h: ".".join(reversed(h.split("."))))
    assert hosts.index("www.zeta.gov") > hosts.index("www.alpha.gov")


def test_url_sort_key_reverses_host_components():
    document = Document(9, "http://www.example.gov/path/x.html", b"x")
    key = url_sort_key(document)
    assert key[0] == "gov.example.www"
    assert key[1].startswith("path/")


def test_url_sorted_preserves_documents_and_ids():
    collection = make_collection()
    ordered = url_sorted(collection)
    assert sorted(ordered.doc_ids()) == sorted(collection.doc_ids())
    for doc_id in collection.doc_ids():
        assert ordered.document_by_id(doc_id).content == collection.document_by_id(doc_id).content


def test_crawl_order_sorts_by_doc_id():
    ordered = crawl_order(url_sorted(make_collection()))
    assert ordered.doc_ids() == [0, 1, 2, 3]


def test_shuffled_is_a_permutation_and_deterministic():
    collection = make_collection()
    a = shuffled(collection, seed=5)
    b = shuffled(collection, seed=5)
    assert a.doc_ids() == b.doc_ids()
    assert sorted(a.doc_ids()) == [0, 1, 2, 3]


def test_ordering_names():
    collection = make_collection()
    assert "urlsorted" in url_sorted(collection).name
    assert "crawl" in crawl_order(collection).name
    assert "shuffled" in shuffled(collection).name


def test_url_sorting_improves_block_locality(gov_small):
    """Same-host documents end up adjacent after URL sorting."""
    ordered = url_sorted(gov_small)
    hosts = [document.host for document in ordered]
    # Count host changes along the order: URL sorting minimises them.
    changes_sorted = sum(1 for a, b in zip(hosts[:-1], hosts[1:]) if a != b)
    crawl_hosts = [document.host for document in gov_small]
    changes_crawl = sum(1 for a, b in zip(crawl_hosts[:-1], crawl_hosts[1:]) if a != b)
    assert changes_sorted <= changes_crawl
