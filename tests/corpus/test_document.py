"""Tests for Document and DocumentCollection."""

import pytest

from repro.corpus import Document, DocumentCollection
from repro.errors import CorpusError


def make_docs():
    return [
        Document(0, "http://a.example.gov/x/page0.html", b"alpha content"),
        Document(1, "http://b.example.gov/y/page1.html", b"beta"),
        Document(2, "http://a.example.gov/z/page2.html", b"gamma gamma"),
    ]


def test_document_properties():
    document = make_docs()[0]
    assert document.host == "a.example.gov"
    assert document.size == len(b"alpha content")
    assert document.text() == "alpha content"


def test_collection_len_iteration_and_lookup():
    collection = DocumentCollection(make_docs(), name="test")
    assert len(collection) == 3
    assert [d.doc_id for d in collection] == [0, 1, 2]
    assert collection.document_by_id(1).content == b"beta"
    assert collection[2].doc_id == 2
    assert collection.name == "test"


def test_unknown_document_id_raises():
    collection = DocumentCollection(make_docs())
    with pytest.raises(CorpusError):
        collection.document_by_id(99)


def test_duplicate_ids_rejected():
    docs = make_docs()
    docs.append(Document(0, "http://dup.gov/", b"dup"))
    with pytest.raises(CorpusError):
        DocumentCollection(docs)


def test_total_and_average_size():
    collection = DocumentCollection(make_docs())
    assert collection.total_size == 13 + 4 + 11
    assert collection.average_document_size == pytest.approx((13 + 4 + 11) / 3)


def test_concatenate_and_boundaries():
    collection = DocumentCollection(make_docs())
    concatenated = collection.concatenate()
    boundaries = collection.boundaries()
    assert concatenated == b"alpha contentbetagamma gamma"
    assert boundaries == [0, 13, 17, 28]
    for index, document in enumerate(collection):
        assert concatenated[boundaries[index] : boundaries[index + 1]] == document.content


def test_prefix_selects_leading_documents():
    collection = DocumentCollection(make_docs())
    prefix = collection.prefix(0.67)
    assert prefix.doc_ids() == [0, 1]
    assert collection.prefix(1.0).doc_ids() == [0, 1, 2]


def test_prefix_requires_valid_fraction():
    collection = DocumentCollection(make_docs())
    with pytest.raises(CorpusError):
        collection.prefix(0.0)
    with pytest.raises(CorpusError):
        collection.prefix(1.5)


def test_reordered_preserves_documents():
    collection = DocumentCollection(make_docs())
    reordered = collection.reordered(lambda d: -d.doc_id)
    assert reordered.doc_ids() == [2, 1, 0]
    assert len(reordered) == len(collection)


def test_subset_by_ids():
    collection = DocumentCollection(make_docs())
    subset = collection.subset([2, 0])
    assert subset.doc_ids() == [2, 0]


def test_empty_collection_statistics():
    collection = DocumentCollection([])
    assert collection.total_size == 0
    assert collection.average_document_size == 0.0
    assert collection.concatenate() == b""
