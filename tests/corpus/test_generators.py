"""Tests for the synthetic GOV2-like and Wikipedia-like generators."""

import pytest

from repro.corpus import (
    GovCrawlConfig,
    GovCrawlGenerator,
    WikipediaConfig,
    WikipediaGenerator,
    generate_gov_collection,
    generate_wikipedia_collection,
)


@pytest.fixture(scope="module")
def gov():
    return generate_gov_collection(num_documents=30, target_document_size=6 * 1024, seed=3)


@pytest.fixture(scope="module")
def wiki():
    return generate_wikipedia_collection(num_documents=8, target_document_size=12 * 1024, seed=3)


def test_gov_document_count_and_ids(gov):
    assert len(gov) == 30
    assert gov.doc_ids() == list(range(30))


def test_gov_documents_look_like_html(gov):
    for document in gov:
        text = document.text()
        assert text.startswith("<!DOCTYPE html>")
        assert "</html>" in text
        assert document.url.startswith("http://www.")
        assert document.url.endswith(".html")
        assert ".gov" in document.host


def test_gov_average_size_near_target(gov):
    assert 0.4 * 6 * 1024 < gov.average_document_size < 2.5 * 6 * 1024


def test_gov_deterministic_for_seed():
    a = generate_gov_collection(num_documents=5, target_document_size=4096, seed=9)
    b = generate_gov_collection(num_documents=5, target_document_size=4096, seed=9)
    assert [d.content for d in a] == [d.content for d in b]


def test_gov_different_seeds_differ():
    a = generate_gov_collection(num_documents=5, target_document_size=4096, seed=1)
    b = generate_gov_collection(num_documents=5, target_document_size=4096, seed=2)
    assert [d.content for d in a] != [d.content for d in b]


def test_gov_shares_boilerplate_across_documents(gov):
    """Documents from the same host share their template chrome (global redundancy)."""
    by_host = {}
    for document in gov:
        by_host.setdefault(document.host, []).append(document)
    multi = [docs for docs in by_host.values() if len(docs) >= 2]
    assert multi, "expected at least one host with two or more pages"
    docs = multi[0]
    head_a = docs[0].content[:200]
    assert head_a in docs[1].content[: len(head_a) + 50]


def test_gov_config_validation():
    with pytest.raises(ValueError):
        GovCrawlConfig(num_documents=0)
    with pytest.raises(ValueError):
        GovCrawlConfig(duplicate_fraction=1.5)
    with pytest.raises(ValueError):
        GovCrawlConfig(num_hosts=0)


def test_gov_generator_exposes_config():
    config = GovCrawlConfig(num_documents=3, target_document_size=2048)
    assert GovCrawlGenerator(config).config is config


def test_wiki_document_count_and_markup(wiki):
    assert len(wiki) == 8
    for document in wiki:
        text = document.text()
        assert "mediawiki" in text.lower()
        assert "infobox" in text
        assert "/wiki/" in document.url


def test_wiki_average_size_near_target(wiki):
    assert 0.4 * 12 * 1024 < wiki.average_document_size < 2.5 * 12 * 1024


def test_wiki_shares_skin_across_articles(wiki):
    """Every article carries the same site skin (stronger global redundancy)."""
    marker = b'id="p-navigation"'
    assert all(marker in document.content for document in wiki)


def test_wiki_config_validation():
    with pytest.raises(ValueError):
        WikipediaConfig(num_documents=0)
    with pytest.raises(ValueError):
        WikipediaConfig(target_document_size=0)


def test_wiki_deterministic_for_seed():
    a = generate_wikipedia_collection(num_documents=3, target_document_size=8192, seed=4)
    b = generate_wikipedia_collection(num_documents=3, target_document_size=8192, seed=4)
    assert [d.content for d in a] == [d.content for d in b]


def test_wiki_generator_exposes_config():
    config = WikipediaConfig(num_documents=2)
    assert WikipediaGenerator(config).config is config
