"""Tests for the synthetic vocabulary and text generator."""

import random

from repro.corpus import TextGenerator, Vocabulary


def test_vocabulary_size_and_uniqueness():
    vocabulary = Vocabulary(size=500, seed=1)
    assert len(vocabulary) >= 500
    assert len(set(vocabulary.words)) == len(vocabulary.words)


def test_vocabulary_contains_common_english_head():
    vocabulary = Vocabulary(size=300, seed=1)
    assert "the" in vocabulary.words[:50]


def test_sampling_is_head_heavy():
    """Zipf-ish sampling should draw head words far more often than tail words."""
    vocabulary = Vocabulary(size=2000, seed=2)
    rng = random.Random(0)
    draws = [vocabulary.sample_word(rng) for _ in range(5000)]
    head = set(vocabulary.words[:100])
    head_fraction = sum(1 for word in draws if word in head) / len(draws)
    assert head_fraction > 0.5


def test_text_generator_sentences_and_paragraphs():
    vocabulary = Vocabulary(size=500, seed=3)
    generator = TextGenerator(vocabulary, seed=3)
    rng = random.Random(1)
    sentence = generator.sentence(rng)
    assert sentence.endswith(".")
    assert sentence[0].isupper()
    paragraph = generator.paragraph(rng, sentences=4)
    assert paragraph.count(".") >= 4


def test_text_generator_reuses_phrases():
    """Phrase reuse is what creates long RLZ factors across documents."""
    vocabulary = Vocabulary(size=500, seed=4)
    generator = TextGenerator(vocabulary, seed=4, phrase_pool_size=20, phrase_probability=0.9)
    rng = random.Random(2)
    text = " ".join(generator.sentence(rng) for _ in range(200))
    reused = sum(1 for phrase in generator.phrases if text.count(phrase) >= 2)
    assert reused >= 5


def test_tokens_helper():
    vocabulary = Vocabulary(size=300, seed=5)
    generator = TextGenerator(vocabulary, seed=5)
    rng = random.Random(3)
    tokens = generator.tokens(rng, 17)
    assert len(tokens) == 17
    assert all(isinstance(token, str) and token for token in tokens)
