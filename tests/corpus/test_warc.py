"""Tests for the REPRO-WARC persistence format."""

import pytest

from repro.corpus import Document, DocumentCollection, iter_warc_records, read_warc, write_warc
from repro.errors import CorpusError


def test_roundtrip(tmp_path, gov_small):
    path = tmp_path / "collection.warc"
    written = write_warc(gov_small, path)
    assert written > 0
    loaded = read_warc(path, name="reloaded")
    assert loaded.name == "reloaded"
    assert loaded.doc_ids() == gov_small.doc_ids()
    for doc_id in gov_small.doc_ids():
        assert loaded.document_by_id(doc_id).content == gov_small.document_by_id(doc_id).content
        assert loaded.document_by_id(doc_id).url == gov_small.document_by_id(doc_id).url


def test_iter_warc_is_lazy(tmp_path):
    collection = DocumentCollection(
        [Document(i, f"http://h.gov/{i}", bytes([65 + i]) * 10) for i in range(5)]
    )
    path = tmp_path / "tiny.warc"
    write_warc(collection, path)
    iterator = iter_warc_records(path)
    first = next(iterator)
    assert first.doc_id == 0
    assert len(list(iterator)) == 4


def test_binary_payload_roundtrip(tmp_path):
    payload = bytes(range(256)) * 4
    collection = DocumentCollection([Document(7, "http://bin.gov/x", payload)])
    path = tmp_path / "binary.warc"
    write_warc(collection, path)
    assert read_warc(path).document_by_id(7).content == payload


def test_bad_magic_raises(tmp_path):
    path = tmp_path / "broken.warc"
    path.write_bytes(b"NOT-A-WARC\nDoc-Id: 1\n\n")
    with pytest.raises(CorpusError):
        read_warc(path)


def test_truncated_payload_raises(tmp_path, gov_small):
    path = tmp_path / "trunc.warc"
    write_warc(gov_small, path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(CorpusError):
        read_warc(path)


def test_default_collection_name_is_stem(tmp_path, gov_small):
    path = tmp_path / "mycrawl.warc"
    write_warc(gov_small, path)
    assert read_warc(path).name == "mycrawl"
