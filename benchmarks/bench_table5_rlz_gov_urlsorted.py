"""Table 5: rlz compression and retrieval on the URL-sorted GOV2-like corpus.

Paper shapes: compression is essentially unchanged by URL sorting (sampling is
order-insensitive); sequential decoding speeds up thanks to locality.

Run with ``pytest benchmarks/bench_table5_rlz_gov_urlsorted.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_table5(benchmark, results_path):
    """Regenerate table5 and record its wall-clock cost."""
    table = run_and_report(benchmark, "table5", results_path)
    assert len(table.rows) > 0
