"""Table 10: compression with dictionaries built from collection prefixes.

Paper shape: compression degrades by roughly one percentage point as the
dictionary-building prefix shrinks from 100% to 10%, and only slightly more at 1%.

Run with ``pytest benchmarks/bench_table10_dynamic_updates.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_table10(benchmark, results_path):
    """Regenerate table10 and record its wall-clock cost."""
    table = run_and_report(benchmark, "table10", results_path)
    assert len(table.rows) > 0
