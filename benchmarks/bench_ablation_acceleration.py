"""Ablation: accelerated vs faithful factorization (identical parses).

The 8-byte-key accelerated matcher and the paper-faithful per-character
refinement produce identical parses; this records the speed difference.

Run with ``pytest benchmarks/bench_ablation_acceleration.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_ablation_acceleration(benchmark, results_path):
    """Regenerate ablation acceleration and record its wall-clock cost."""
    table = run_and_report(benchmark, "ablation-acceleration", results_path)
    assert len(table.rows) > 0
