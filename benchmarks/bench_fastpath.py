"""Fast-path throughput benchmark: current pipeline vs the frozen seed.

Measures encode throughput (jump-start index + stream factorization +
parallel pipeline), decode throughput (batch decode + serving cache) and
the serving front (async clients + cache tier vs the sequential get loop)
against frozen re-implementations of the seed revision's hot loops, verifies
byte-identical factor streams and exact round-trips in the same run, and
appends the raw numbers to ``benchmarks/results/fastpath.json`` so the perf
trajectory accumulates machine-readable points.

Run with ``pytest benchmarks/bench_fastpath.py --benchmark-only``; scale with
the ``REPRO_BENCH_SCALE`` environment variable.
"""

from pathlib import Path

from repro.bench.fastpath import fastpath_benchmark

RESULTS_DIR = Path(__file__).parent / "results"


def test_fastpath(benchmark, results_path):
    """Record fast-path speedups and verify parse/round-trip identity."""
    json_path = RESULTS_DIR / "fastpath.json"
    table = benchmark.pedantic(
        fastpath_benchmark,
        kwargs={"output_json": json_path},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    table.print()
    table.save(results_path)
    notes = "\n".join(table.notes)
    assert "byte-identical to seed: True" in notes
    assert "parallel blobs identical to serial: True" in notes
    assert "round-trip verified against corpus: True" in notes
    assert "served bytes verified against corpus: True" in notes


def test_fastpath_serving(benchmark, results_path):
    """Record the serving-front comparison (sequential loop vs cache tier vs
    concurrent async clients) and verify every served byte."""
    from repro.bench.serving import serving_benchmark

    json_path = RESULTS_DIR / "fastpath.json"
    table = benchmark.pedantic(
        serving_benchmark,
        kwargs={"output_json": json_path},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    table.print()
    table.save(results_path)
    notes = "\n".join(table.notes)
    assert "served bytes verified against corpus: True" in notes


def test_fastpath_network(benchmark, results_path):
    """Record the socket-serving comparison (local get loop vs 1/8/64
    concurrent RlzClient sessions) and verify every served byte."""
    from repro.bench.network import network_benchmark

    json_path = RESULTS_DIR / "fastpath.json"
    table = benchmark.pedantic(
        network_benchmark,
        kwargs={"output_json": json_path},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    table.print()
    table.save(results_path)
    notes = "\n".join(table.notes)
    assert "served bytes verified against corpus: True" in notes


def test_fastpath_cluster(benchmark, results_path):
    """Record the cluster-serving comparison (v1 request/response loop vs
    pipelined single connection vs 1/2/4-shard ClusterClient fan-out) and
    verify every served byte.  The pipelined loop must measurably beat
    the v1 loop (target >= 1.5x)."""
    from repro.bench.cluster import cluster_benchmark

    json_path = RESULTS_DIR / "fastpath.json"
    table = benchmark.pedantic(
        cluster_benchmark,
        kwargs={"output_json": json_path},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    table.print()
    table.save(results_path)
    notes = "\n".join(table.notes)
    assert "served bytes verified against corpus: True" in notes
    assert "pipelined 1-conn speedup over v1 request/response:" in notes


def test_fastpath_chaos(benchmark, results_path):
    """Record the chaos comparison (one delay-faulted shard, hedging off
    vs on) and verify every served byte across all four legs."""
    from repro.bench.chaos import chaos_benchmark

    json_path = RESULTS_DIR / "fastpath.json"
    table = benchmark.pedantic(
        chaos_benchmark,
        kwargs={"output_json": json_path},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    table.print()
    table.save(results_path)
    notes = "\n".join(table.notes)
    assert "served bytes verified against corpus: True" in notes
    assert "hedging" in notes


def test_fastpath_partition(benchmark, results_path):
    """Record the partitioned-serving comparison (2-replica fleet vs 2- and
    4-way shard-owned partitions: stored footprint + get/get_many/sweep
    throughput) and verify every served byte across all fleets."""
    from repro.bench.partition import partition_benchmark

    json_path = RESULTS_DIR / "fastpath.json"
    table = benchmark.pedantic(
        partition_benchmark,
        kwargs={"output_json": json_path},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    table.print()
    table.save(results_path)
    notes = "\n".join(table.notes)
    assert "served bytes verified against corpus: True" in notes
    assert "JSON record appended to" in notes


def test_fastpath_search(benchmark, results_path):
    """Record the search-serving comparison (in-memory index vs persistent
    postings vs served SEARCH vs 4-way sharded fan-out), verify every
    ranking hit-for-hit against the local index, and measure the windowed
    snippet decode against whole-document decode."""
    from repro.bench.search import search_benchmark

    json_path = RESULTS_DIR / "fastpath.json"
    table = benchmark.pedantic(
        search_benchmark,
        kwargs={"output_json": json_path},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    table.print()
    table.save(results_path)
    notes = "\n".join(table.notes)
    assert "sharded ranking identical to local index: True" in notes
    assert "snippet windows verified against corpus: True" in notes
    assert "windowed decode cheaper than full decode: True" in notes
    assert "JSON record appended to" in notes


def test_fastpath_large_dictionary(benchmark, results_path):
    """Verify the compact jump index is active (no silent fallback) for a
    dictionary above the old 1 MiB gate, with seed-identical streams."""
    from repro.bench.fastpath import large_dictionary_benchmark

    json_path = RESULTS_DIR / "fastpath.json"
    table = benchmark.pedantic(
        large_dictionary_benchmark,
        kwargs={"output_json": json_path, "rounds": 1},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    table.print()
    table.save(results_path)
    notes = "\n".join(table.notes)
    assert "jump-start active (compact, no fallback): True" in notes
    assert "byte-identical to seed: True" in notes
    assert "round-trip verified against corpus: True" in notes
