"""Shared configuration for the benchmark suite.

Each benchmark file regenerates one table or figure from the paper via the
experiment functions in :mod:`repro.bench.experiments`.  Experiments are run
once per session (``rounds=1``) because each one is itself a full
compression / retrieval campaign; pytest-benchmark still records the
wall-clock time, and the rendered result table is written to
``benchmarks/results/`` and echoed to the terminal.

Scale is controlled with ``REPRO_BENCH_SCALE`` (tiny | small | medium |
large); the default is ``small``.  See DESIGN.md section 4 for the
experiment index and EXPERIMENTS.md for the paper-vs-measured record.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.harness import run_experiment

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_path() -> Path:
    """File collecting every rendered result table for this run."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR / "bench_tables.txt"


def run_and_report(benchmark, experiment_id: str, results_path: Path):
    """Run one experiment under pytest-benchmark and persist its table."""
    table = benchmark.pedantic(
        run_experiment, args=(experiment_id,), rounds=1, iterations=1, warmup_rounds=0
    )
    table.print()
    table.save(results_path)
    return table
