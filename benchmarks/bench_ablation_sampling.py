"""Ablation: uniform-interval sampling vs whole-document random sampling.

The paper's evenly spaced sampling covers the collection better than
concatenating randomly chosen documents of the same total size.

Run with ``pytest benchmarks/bench_ablation_sampling.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_ablation_sampling(benchmark, results_path):
    """Regenerate ablation sampling and record its wall-clock cost."""
    table = run_and_report(benchmark, "ablation-sampling", results_path)
    assert len(table.rows) > 0
