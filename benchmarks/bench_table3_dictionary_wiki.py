"""Table 3: average factor length and unused dictionary bytes on the Wikipedia-like corpus.

Same grid as Table 2 on the Wikipedia-like collection; factors are somewhat
shorter and dictionary waste lower than on the .gov crawl.

Run with ``pytest benchmarks/bench_table3_dictionary_wiki.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_table3(benchmark, results_path):
    """Regenerate table3 and record its wall-clock cost."""
    table = run_and_report(benchmark, "table3", results_path)
    assert len(table.rows) > 0
