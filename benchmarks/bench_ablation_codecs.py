"""Ablation: pair-coding schemes including the Section 6 future-work codecs.

Covers the paper's ZZ/ZV/UZ/UV plus Elias gamma/delta, Simple-9 and PForDelta
length/position codings.

Run with ``pytest benchmarks/bench_ablation_codecs.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_ablation_codecs(benchmark, results_path):
    """Regenerate ablation codecs and record its wall-clock cost."""
    table = run_and_report(benchmark, "ablation-codecs", results_path)
    assert len(table.rows) > 0
