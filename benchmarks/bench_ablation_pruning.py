"""Ablation: dictionary pruning / iterative resampling (Section 6 future work).

Compares the paper's single-pass uniform sampling against the multi-pass
prune-and-resample loop sketched in the conclusion (unused dictionary runs
are dropped and refilled with fresh samples).

Run with ``pytest benchmarks/bench_ablation_pruning.py --benchmark-only``;
scale with the ``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_ablation_pruning(benchmark, results_path):
    """Regenerate the pruning ablation and record its wall-clock cost."""
    table = run_and_report(benchmark, "ablation-pruning", results_path)
    assert len(table.rows) > 0
