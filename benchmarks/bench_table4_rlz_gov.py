"""Table 4: rlz compression and retrieval on the GOV2-like corpus (crawl order).

Paper shapes: larger dictionaries compress better; UV decodes fastest and ZZ
is smallest; sequential retrieval is orders of magnitude faster than query-log.

Run with ``pytest benchmarks/bench_table4_rlz_gov.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_table4(benchmark, results_path):
    """Regenerate table4 and record its wall-clock cost."""
    table = run_and_report(benchmark, "table4", results_path)
    assert len(table.rows) > 0
