"""Figure 3: frequency histogram of encoded length values per sample period.

Paper shape: the overwhelming majority of length values is small (< 100)
irrespective of the sample period used to build the dictionary.

Run with ``pytest benchmarks/bench_figure3_length_histogram.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_figure3(benchmark, results_path):
    """Regenerate figure3 and record its wall-clock cost."""
    table = run_and_report(benchmark, "figure3", results_path)
    assert len(table.rows) > 0
