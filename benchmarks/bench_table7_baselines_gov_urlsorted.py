"""Table 7: baselines on the URL-sorted GOV2-like corpus.

Paper shapes: URL sorting significantly improves blocked compression because
same-host template-sharing pages land in the same block.

Run with ``pytest benchmarks/bench_table7_baselines_gov_urlsorted.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_table7(benchmark, results_path):
    """Regenerate table7 and record its wall-clock cost."""
    table = run_and_report(benchmark, "table7", results_path)
    assert len(table.rows) > 0
