"""Table 9: baselines on the Wikipedia-like corpus.

Paper shapes: as Table 6 on the Wikipedia-like collection.

Run with ``pytest benchmarks/bench_table9_baselines_wiki.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_table9(benchmark, results_path):
    """Regenerate table9 and record its wall-clock cost."""
    table = run_and_report(benchmark, "table9", results_path)
    assert len(table.rows) > 0
