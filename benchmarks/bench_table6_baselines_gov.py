"""Table 6: ascii / blocked zlib / blocked lzma baselines on the GOV2-like corpus.

Paper shapes: bigger blocks compress better but retrieve slower; lzma beats
zlib on space and loses on speed; ascii pays full transfer volume.

Run with ``pytest benchmarks/bench_table6_baselines_gov.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_table6(benchmark, results_path):
    """Regenerate table6 and record its wall-clock cost."""
    table = run_and_report(benchmark, "table6", results_path)
    assert len(table.rows) > 0
