"""Table 2: average factor length and unused dictionary bytes on the GOV2-like corpus.

Paper trends: larger dictionaries give longer average factors; larger sample
sizes leave fewer unused dictionary bytes.

Run with ``pytest benchmarks/bench_table2_dictionary_gov.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_table2(benchmark, results_path):
    """Regenerate table2 and record its wall-clock cost."""
    table = run_and_report(benchmark, "table2", results_path)
    assert len(table.rows) > 0
