"""Table 8: rlz compression and retrieval on the Wikipedia-like corpus.

Paper shapes: as Table 4; Z-coded schemes benefit relatively more because the
larger documents give zlib more per-document context.

Run with ``pytest benchmarks/bench_table8_rlz_wiki.py --benchmark-only``; scale with the
``REPRO_BENCH_SCALE`` environment variable.
"""

from conftest import run_and_report


def test_table8(benchmark, results_path):
    """Regenerate table8 and record its wall-clock cost."""
    table = run_and_report(benchmark, "table8", results_path)
    assert len(table.rows) > 0
