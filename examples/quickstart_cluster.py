"""Quickstart, clustered: one archive view over a fleet of servers.

The horizontal-scale variant of ``examples/quickstart_networked.py``: the
same archive, but replicated behind *two* servers with a
:class:`repro.serve.ClusterClient` fanning requests out by consistent
hashing — the shape the paper's "heavy traffic from millions of users"
story lands on.

1. build an archive and start two replica servers (each could also host
   several *named* archives: ``BackgroundServer({"gov": ..., "wiki":
   ...})`` / ``repro serve gov=a.rlz wiki=b.rlz``),
2. connect a ``ClusterClient`` — still the plain ``ArchiveView`` surface,
   so retrieval code is identical to local code — and watch the shard map
   split the documents between the endpoints,
3. batch-retrieve with per-shard pipelining (one connection per shard,
   a window of requests in flight, out-of-order replies correlated by
   request id),
4. kill one server mid-run and retrieve the same batch again: the
   circuit breaker re-routes to the surviving replica and the bytes stay
   identical.

Run with ``python examples/quickstart_cluster.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    ArchiveConfig,
    BackgroundServer,
    CacheSpec,
    ClusterClient,
    DictionarySpec,
    EncodingSpec,
    RlzArchive,
    generate_gov_collection,
)


def main() -> None:
    collection = generate_gov_collection(num_documents=120, seed=7)
    expected = {document.doc_id: document.content for document in collection}
    config = ArchiveConfig(
        dictionary=DictionarySpec(size=64 * 1024),
        encoding=EncodingSpec(scheme="ZV"),
        cache=CacheSpec(tier="lru", capacity=64),
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cluster-quickstart.rlz"
        RlzArchive.build(collection, config, path).close()

        # Two replica servers: the fleet.  (In production these are
        # separate machines running `repro serve`.)
        replicas = [BackgroundServer(path, config) for _ in range(2)]
        endpoints = []
        try:
            for server in replicas:
                host, port = server.start()
                endpoints.append(f"{host}:{port}")
            print(f"fleet up: {', '.join(endpoints)}")

            with ClusterClient(
                endpoints, breaker_cooldown=0.2, retries=1, retry_delay=0.02
            ) as cluster:
                doc_ids = cluster.doc_ids()
                shares = {endpoint: 0 for endpoint in endpoints}
                for doc_id in doc_ids:
                    shares[cluster.shard_map.primary(doc_id)] += 1
                print(
                    "shard map: "
                    + ", ".join(
                        f"{endpoint} owns {count} docs"
                        for endpoint, count in shares.items()
                    )
                )

                # Batch retrieval: pipelined per shard, order preserved.
                batch = list(reversed(doc_ids)) + doc_ids[:5]
                documents = cluster.get_many(batch)
                assert documents == [expected[doc_id] for doc_id in batch]
                print(f"get_many: {len(batch)} documents byte-identical, in order")

                # Full scan: chunked SCAN streams per shard, merged back
                # into exact store order.
                assert dict(cluster.iter_documents()) == expected
                print(f"iter_documents: all {len(doc_ids)} documents verified")

                # Failover: one replica dies mid-run.
                replicas[1].stop()
                print(f"killed {endpoints[1]} -- retrieving the same batch...")
                survivors = cluster.get_many(batch)
                assert survivors == documents  # byte-identical through failover
                # A few per-document gets against the corpse trip its
                # circuit breaker: later requests skip it for a cooldown
                # instead of paying a failed dial each.
                dead_owned = [
                    doc_id for doc_id in doc_ids
                    if cluster.shard_map.primary(doc_id) == endpoints[1]
                ]
                for doc_id in dead_owned[:3]:
                    assert cluster.get(doc_id) == expected[doc_id]
                print(
                    f"failover: byte-identical results, "
                    f"{cluster.failovers} re-routed requests, breaker for the "
                    f"dead shard is {cluster.breaker(endpoints[1]).state!r}"
                )

                stats = cluster.stats()
                reachable = sum(
                    stats[f"shard{i}_reachable"] for i in range(len(endpoints))
                )
                print(
                    f"stats: {int(stats['cluster_endpoints'])} endpoints, "
                    f"{int(reachable)} reachable, "
                    f"{int(stats['cluster_failovers'])} failovers total"
                )
        finally:
            for server in replicas:
                try:
                    server.stop()
                except Exception:
                    pass
    print("cluster quickstart finished")


if __name__ == "__main__":
    main()
