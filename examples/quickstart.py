"""Quickstart: compress a web collection with RLZ and read documents back.

This walks the paper's pipeline end to end on a small synthetic crawl:

1. generate a GOV2-like collection,
2. sample a dictionary and compress every document relative to it,
3. persist the result to an on-disk store,
4. retrieve documents by ID (random access) and sequentially.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import DictionaryConfig, RlzCompressor, generate_gov_collection
from repro.storage import RlzStore


def main() -> None:
    # 1. A synthetic .gov-style crawl: 120 documents of ~12 KB each.
    collection = generate_gov_collection(
        num_documents=120, target_document_size=12 * 1024, seed=2024
    )
    print(
        f"collection: {len(collection)} documents, "
        f"{collection.total_size / 1e6:.1f} MB, "
        f"average {collection.average_document_size / 1024:.1f} KB/doc"
    )

    # 2. Compress with a dictionary of ~1.5% of the collection (the paper
    #    shows even ~0.1% works at web scale) and the ZV pair coding.
    dictionary_size = max(64 * 1024, collection.total_size // 64)
    compressor = RlzCompressor(
        dictionary_config=DictionaryConfig(size=dictionary_size, sample_size=1024),
        scheme="ZV",
    )
    compressed, report = compressor.compress(collection, collect_statistics=True)
    print(
        f"dictionary: {dictionary_size / 1024:.0f} KB, "
        f"average factor length {report.average_factor_length:.1f}, "
        f"unused dictionary bytes {report.unused_dictionary_percent:.1f}%"
    )
    print(
        f"compression: {compressed.compression_ratio(include_dictionary=False):.2f}% "
        f"of the original size (excluding the dictionary), "
        f"{compressed.compression_ratio(include_dictionary=True):.2f}% including it"
    )

    # 3. Persist to a container file and reopen it.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "crawl.rlz"
        RlzStore.write(compressed, path)
        print(f"store written: {path.stat().st_size / 1e6:.2f} MB on disk")

        with RlzStore.open(path) as store:
            # 4a. Random access by document ID.
            wanted = collection.doc_ids()[37]
            document = store.get(wanted)
            original = collection.document_by_id(wanted)
            assert document == original.content
            print(f"random access: doc {wanted} ({len(document):,} bytes) round-tripped")

            # 4b. Sequential scan (batch processing).
            total = sum(len(text) for _, text in store.iter_documents())
            assert total == collection.total_size
            print(f"sequential scan: decoded {total / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
