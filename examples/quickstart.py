"""Quickstart: compress a web collection with RLZ and read documents back.

This walks the paper's pipeline end to end on a small synthetic crawl,
through the :class:`repro.api.RlzArchive` facade:

1. generate a GOV2-like collection,
2. ``RlzArchive.build`` — sample a dictionary, compress every document and
   persist the result in one call, configured by one ``ArchiveConfig``,
3. ``RlzArchive.open`` — reopen for serving with an LRU decode cache,
4. retrieve documents by ID (random access, with per-request stats) and
   sequentially.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    ArchiveConfig,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    RlzArchive,
    generate_gov_collection,
)


def main() -> None:
    # 1. A synthetic .gov-style crawl: 120 documents of ~12 KB each.
    collection = generate_gov_collection(
        num_documents=120, target_document_size=12 * 1024, seed=2024
    )
    print(
        f"collection: {len(collection)} documents, "
        f"{collection.total_size / 1e6:.1f} MB, "
        f"average {collection.average_document_size / 1024:.1f} KB/doc"
    )

    # 2. One config object carries every tuning decision: a dictionary of
    #    ~1.5% of the collection (the paper shows even ~0.1% works at web
    #    scale), the ZV pair coding, and an LRU decode cache for serving.
    config = ArchiveConfig(
        dictionary=DictionarySpec(
            size=max(64 * 1024, collection.total_size // 64), sample_size=1024
        ),
        encoding=EncodingSpec(scheme="ZV"),
        cache=CacheSpec(tier="lru", capacity=32),
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "crawl.rlz"

        # 3. Build + persist + open in one call.
        archive = RlzArchive.build(collection, config, path)
        print(
            f"archive built: {path.stat().st_size / 1e6:.2f} MB on disk, "
            f"{archive.compression_percent(include_dictionary=False):.2f}% of "
            f"the original size (excluding the dictionary), "
            f"{archive.compression_percent(include_dictionary=True):.2f}% including it"
        )
        archive.close()

        # 4. Reopen for serving (what a reader process does).
        with RlzArchive.open(path, config) as archive:
            # 4a. Random access by document ID, with per-request stats.
            wanted = archive.doc_ids()[37]
            document = archive.get(wanted)
            assert document == collection.document_by_id(wanted).content
            request = archive.last_request
            print(
                f"random access: doc {wanted} ({request.bytes_served:,} bytes) "
                f"round-tripped in {request.seconds * 1e3:.2f} ms"
            )

            # Repeated access hits the cache tier instead of re-decoding.
            archive.get(wanted)
            print(f"repeat access: cache hits = {archive.last_request.cache_hits}")

            # 4b. Batched random access (one vectorized decode for misses).
            batch = archive.get_many(archive.doc_ids()[:10])
            print(f"batched access: {len(batch)} documents in one request")

            # 4c. Sequential scan (batch processing).
            total = sum(len(text) for _, text in archive.iter_documents())
            assert total == collection.total_size
            print(f"sequential scan: decoded {total / 1e6:.1f} MB")

            stats = archive.stats()
            print(
                f"session stats: {stats['requests']:.0f} requests, "
                f"{stats['bytes_served'] / 1e6:.1f} MB served, "
                f"{stats['cache_hits']:.0f} cache hits"
            )


if __name__ == "__main__":
    main()
