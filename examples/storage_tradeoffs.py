"""Storage-engineering scenario: choose a document store for an archive.

An engineer sizing a document storage tier wants the trade-off curve the
paper's Tables 4-9 describe: for each candidate configuration, how much disk
does it use and how fast can it serve sequential scans and random (query-log)
lookups?  This script sweeps a small grid — RLZ with the four pair codings,
blocked zlib/lzma at several block sizes, and the raw store — over one
synthetic collection and prints a single comparison table.

This example deliberately stays on the **legacy pipeline** (``RlzStore``
assembled by hand from factorizations, per-call kwargs instead of
``ArchiveConfig``) because it exercises the pieces individually — and it
demonstrates the deprecation shim: ``decode_cache_size=`` still works but
warns, pointing at the :mod:`repro.api` facade.  See
``examples/quickstart.py`` for the facade version of this workflow.

Run with ``python examples/storage_tradeoffs.py``.
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

from repro import DictionaryConfig, generate_gov_collection
from repro.bench import ResultTable, measure_retrieval
from repro.baselines import build_ascii_baseline, build_blocked_baseline
from repro.core import PAPER_SCHEMES, PairEncoder, RlzFactorizer, build_dictionary
from repro.core.compressor import CompressedCollection, CompressedDocument
from repro.search import AccessPatterns
from repro.storage import BlockedStore, RawStore, RlzStore


def main() -> None:
    collection = generate_gov_collection(
        num_documents=120, target_document_size=10 * 1024, seed=31
    )
    patterns = AccessPatterns(collection, num_requests=400, num_queries=80)
    table = ResultTable(
        title=f"Storage trade-offs on {collection.name} "
        f"({collection.total_size / 1e6:.1f} MB, {len(collection)} docs)",
        headers=["System", "Enc. (%)", "Sequential docs/s", "Query-log docs/s"],
    )

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)

        # --- rlz, one factorization reused for all four pair codings -------
        dictionary = build_dictionary(
            collection, DictionaryConfig(size=collection.total_size // 40, sample_size=1024)
        )
        factorizer = RlzFactorizer(dictionary)
        factorizations = [factorizer.factorize(document.content) for document in collection]
        for scheme in PAPER_SCHEMES:
            encoder = PairEncoder(scheme)
            compressed = CompressedCollection(
                dictionary=dictionary,
                scheme_name=scheme,
                documents=[
                    CompressedDocument(doc.doc_id, encoder.encode(fz), doc.size)
                    for doc, fz in zip(collection, factorizations)
                ],
                collection_name=collection.name,
            )
            path = RlzStore.write(compressed, tmp_path / f"rlz-{scheme}.repro")
            with RlzStore.open(path) as store:
                table.add_row(
                    f"rlz {scheme}",
                    store.compression_percent(include_dictionary=True),
                    measure_retrieval(store, patterns.sequential).docs_per_second,
                    measure_retrieval(store, patterns.query_log).docs_per_second,
                )

        # --- blocked baselines ---------------------------------------------
        for compressor in ("zlib", "lzma"):
            for block_mb in (0.0, 0.2, 1.0):
                path = build_blocked_baseline(
                    collection, tmp_path / f"{compressor}-{block_mb}.repro", compressor, block_mb
                )
                with BlockedStore.open(path) as store:
                    table.add_row(
                        f"{compressor} {block_mb:.1f}MB blocks",
                        store.compression_percent(),
                        measure_retrieval(store, patterns.sequential).docs_per_second,
                        measure_retrieval(store, patterns.query_log).docs_per_second,
                    )

        # --- raw ascii -------------------------------------------------------
        path = build_ascii_baseline(collection, tmp_path / "ascii.repro")
        with RawStore.open(path) as store:
            table.add_row(
                "ascii (uncompressed)",
                100.0,
                measure_retrieval(store, patterns.sequential).docs_per_second,
                measure_retrieval(store, patterns.query_log).docs_per_second,
            )

        # The deprecated serving knob still works through its shim: opening
        # with decode_cache_size= warns (use ArchiveConfig/CacheSpec or
        # cache=LruCache(n) instead) but serves correctly.
        rlz_path = tmp_path / f"rlz-{sorted(PAPER_SCHEMES)[0]}.repro"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy_store = RlzStore.open(rlz_path, decode_cache_size=16)
        assert any(
            issubclass(entry.category, DeprecationWarning) for entry in caught
        ), "expected the decode_cache_size deprecation shim to warn"
        with legacy_store:
            doc_id = collection.doc_ids()[0]
            assert legacy_store.get(doc_id) == legacy_store.get(doc_id)
            print(
                "\nlegacy shim: decode_cache_size= warned "
                f"({caught[0].message}) and served doc {doc_id} with "
                f"{legacy_store.cache_info['hits']} cache hit(s)"
            )

    table.print()
    print(
        "\nReading the table: rlz holds compression close to the big-block adaptive\n"
        "compressors while serving random lookups at per-document granularity —\n"
        "the trade-off the paper's evaluation establishes at web scale."
    )


if __name__ == "__main__":
    main()
