"""Quickstart, partitioned: shards that own their arc, rebalanced live.

The storage-scale variant of ``examples/quickstart_cluster.py``: instead
of every server replicating the whole archive, ``repro partition`` deals
the collection out across shards by consistent hashing — each shard's
container holds *only* the doc ids its arc of the ring owns, so the
fleet stores each document once no matter how many servers serve it.

1. split one collection into two per-shard containers
   (:func:`repro.serve.build_partitioned_archives` /
   ``repro partition``) and start one server per shard,
2. connect a :class:`repro.ClusterClient` with ``ringid@host:port``
   serving labels — it bootstraps the shard map (epoch 1) from any
   member over the wire and routes every read to the owner,
3. add a third, empty *joining* shard
   (:func:`repro.serve.write_spare_shard`) and live-rebalance its arc
   onto it (:func:`repro.serve.rebalance` / ``repro rebalance``) while
   the fleet keeps serving,
4. read through the old client again: the donors' ``R_WRONG_SHARD``
   replies push the new epoch, the client refreshes its map, learns the
   recipient's address from it, and retries — byte-identical, no
   restart.

Run with ``python examples/quickstart_partitioned.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    ArchiveConfig,
    BackgroundServer,
    ClusterClient,
    DictionarySpec,
    EncodingSpec,
    PartitionSpec,
    generate_gov_collection,
)
from repro.serve import build_partitioned_archives, rebalance, write_spare_shard
from repro.storage import RlzStore


def main() -> None:
    collection = generate_gov_collection(num_documents=120, seed=7)
    expected = {document.doc_id: document.content for document in collection}
    config = ArchiveConfig(
        dictionary=DictionarySpec(size=64 * 1024),
        encoding=EncodingSpec(scheme="ZV"),
        partition=PartitionSpec(shards=2),
    )

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        # One collection in, one container per shard out — each holds
        # only the doc ids its arc of the consistent-hash ring owns.
        shard_paths = build_partitioned_archives(collection, config, tmp_path)
        for ring_id, path in shard_paths.items():
            held = len(RlzStore.open(path).document_map)
            print(f"built {ring_id}: {held} of {len(expected)} documents")

        servers, endpoints = [], []
        try:
            for ring_id, path in shard_paths.items():
                server = BackgroundServer(path, config)
                host, port = server.start()
                servers.append(server)
                endpoints.append(f"{ring_id}@{host}:{port}")
            print(f"fleet up: {', '.join(endpoints)}")

            with ClusterClient(endpoints, retry_delay=0.02) as cluster:
                doc_ids = cluster.doc_ids()  # global order, from any shard
                batch = list(reversed(doc_ids)) + doc_ids[:5]
                documents = cluster.get_many(batch)
                assert documents == [expected[doc_id] for doc_id in batch]
                assert dict(cluster.iter_documents()) == expected
                print(
                    f"epoch {cluster.epoch}: {len(batch)} documents "
                    f"byte-identical through the partitioned fleet"
                )

                # A third shard joins: empty container cloned from the
                # fleet (same dictionary + doc order, owns nothing yet).
                spare_path = write_spare_shard(
                    next(iter(shard_paths.values())),
                    tmp_path / "shard2.rlz",
                    "shard2",
                )
                spare = BackgroundServer(spare_path, config)
                spare_host, spare_port = spare.start()
                servers.append(spare)

                # Live rebalance: stream the joining shard's arc over,
                # then install epoch 2 — recipient first, donors after,
                # so reads never fail in between.
                report = rebalance(
                    endpoints,
                    to=f"shard2@{spare_host}:{spare_port}",
                    batch_docs=16,
                )
                print(f"rebalance: {report.describe()}")

                # Same client, no restart: donors refuse the moved arc
                # with the new epoch, the client refreshes its map and
                # retries against the new owner.
                assert cluster.get_many(batch) == documents
                assert cluster.epoch == report.epoch
                stats = cluster.stats()
                print(
                    f"cutover: epoch {cluster.epoch}, "
                    f"{int(stats['cluster_epoch_refreshes'])} map refreshes, "
                    f"{int(stats['cluster_wrong_shard_retries'])} redirected "
                    f"reads, bytes identical"
                )

                # On disk each container again holds only its own arc.
                for ring_id in ("shard0", "shard1"):
                    held = len(RlzStore.open(shard_paths[ring_id]).document_map)
                    print(f"{ring_id} now holds {held} documents")
                moved = len(RlzStore.open(spare_path).document_map)
                print(f"shard2 now holds {moved} documents")
        finally:
            for server in servers:
                try:
                    server.stop()
                except Exception:
                    pass
    print("partitioned quickstart finished")


if __name__ == "__main__":
    main()
