"""Dynamic-collection scenario: keep compressing as new documents arrive.

Section 3.6 of the paper argues that RLZ behaves well when a collection
grows: a dictionary sampled from an earlier snapshot keeps compressing new
documents, and (if quality degrades) samples of the new material can be
appended to the dictionary without invalidating anything already encoded.

This script demonstrates both halves:

1. the Table 10 protocol — dictionaries built from shrinking prefixes of the
   collection, used to compress the whole collection;
2. the :class:`repro.core.AppendOnlyUpdater` reacting to a topic shift
   (a .gov dictionary suddenly fed Wikipedia-style articles).

Run with ``python examples/dynamic_archive_updates.py``.
"""

from __future__ import annotations

from repro.core import (
    AppendOnlyUpdater,
    DictionaryConfig,
    PairEncoder,
    build_dictionary,
    decode_pairs,
    simulate_prefix_dictionaries,
)
from repro.corpus import generate_gov_collection, generate_wikipedia_collection


def prefix_dictionary_demo() -> None:
    collection = generate_wikipedia_collection(
        num_documents=40, target_document_size=20 * 1024, seed=13
    )
    print(f"collection: {len(collection)} articles, {collection.total_size / 1e6:.1f} MB")
    results = simulate_prefix_dictionaries(
        collection,
        dictionary_size=collection.total_size // 30,
        sample_size=1024,
        prefixes=(1.0, 0.5, 0.25, 0.1),
        scheme="ZZ",
    )
    print("prefix of collection used for the dictionary -> encoding %:")
    for result in results:
        print(f"  {result.prefix_percent:6.1f}%  ->  {result.compression_percent:6.2f}%")
    drift = results[-1].compression_percent - results[0].compression_percent
    print(f"degradation from full to 10% prefix: {drift:+.2f} percentage points\n")


def append_only_updater_demo() -> None:
    gov = generate_gov_collection(num_documents=60, target_document_size=8 * 1024, seed=5)
    wiki = generate_wikipedia_collection(num_documents=12, target_document_size=16 * 1024, seed=5)

    dictionary = build_dictionary(gov, DictionaryConfig(size=48 * 1024, sample_size=1024))
    updater = AppendOnlyUpdater(dictionary, scheme="ZV", threshold_percent=20.0, window=4)

    encoded = []
    for document in list(gov)[:20] + list(wiki):
        encoded.append((document, updater.add_document(document)))

    print(
        f"after a topic shift the updater extended the dictionary "
        f"{updater.rebuilds} time(s), appending {updater.appended_bytes:,} bytes"
    )
    # Everything encoded before or after the extension still decodes against
    # the final dictionary, because appends never move existing offsets.
    encoder = PairEncoder("ZV")
    for document, blob in encoded:
        positions, lengths = encoder.decode_streams(blob)
        assert decode_pairs(positions, lengths, updater.dictionary) == document.content
    print(f"all {len(encoded)} documents verified against the extended dictionary")


if __name__ == "__main__":
    prefix_dictionary_demo()
    append_only_updater_demo()
