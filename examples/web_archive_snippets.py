"""Web-archive scenario: search a compressed crawl and build result snippets.

This is the workload the paper's introduction motivates: a retrieval system
stores its crawl compressed, answers queries from an inverted index, and must
fetch the matching documents quickly to build query-biased snippets.  The
script serves that access pattern through the :class:`repro.api.RlzArchive`
facade — including the asyncio front, where concurrent queries asking for
the same popular documents are coalesced into single decodes — and compares
it against a blocked-zlib store.

Run with ``python examples/web_archive_snippets.py``.
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro import (
    ArchiveConfig,
    AsyncRlzArchive,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    RlzArchive,
    generate_gov_collection,
)
from repro.baselines import build_blocked_baseline
from repro.bench import measure_retrieval
from repro.search import InvertedIndex, generate_queries, strip_markup
from repro.storage import BlockedStore


def make_snippet(document_text: str, query: str, width: int = 160) -> str:
    """A crude query-biased snippet: the first window containing a query term."""
    text = " ".join(strip_markup(document_text).split())
    lowered = text.lower()
    for term in query.lower().split():
        index = lowered.find(term)
        if index >= 0:
            start = max(0, index - width // 3)
            return "…" + text[start : start + width] + "…"
    return text[:width] + "…"


async def serve_queries(path: Path, config: ArchiveConfig, query_hits):
    """Serve the query load concurrently: one client session per query."""
    async with AsyncRlzArchive.open(path, config) as front:
        await asyncio.gather(*(front.gather(doc_ids) for doc_ids in query_hits))
        return front.stats()


def main() -> None:
    collection = generate_gov_collection(
        num_documents=150, target_document_size=10 * 1024, seed=99
    )
    print(f"crawl: {len(collection)} pages, {collection.total_size / 1e6:.1f} MB")

    # Index the crawl and prepare a small query load.
    index = InvertedIndex.build(collection)
    queries = generate_queries(collection, num_queries=25, seed=7)

    config = ArchiveConfig(
        dictionary=DictionarySpec(size=collection.total_size // 50, sample_size=1024),
        encoding=EncodingSpec(scheme="ZV"),
        cache=CacheSpec(tier="lru", capacity=64),
    )

    with tempfile.TemporaryDirectory() as tmp:
        # The paper's system behind the facade; one build call.
        rlz_path = Path(tmp) / "rlz.repro"
        RlzArchive.build(collection, config, rlz_path).close()
        # The conventional alternative: 0.5 MB zlib blocks.
        zlib_path = build_blocked_baseline(collection, Path(tmp) / "zlib.repro", "zlib", 0.5)

        # Build the query-log access pattern: top-5 results per query.
        query_hits = []
        requests = []
        for query in queries:
            hits = [result.doc_id for result in index.search(query, top_k=5)]
            query_hits.append(hits)
            requests.extend(hits)
        print(f"query load: {len(queries)} queries, {len(requests)} document fetches")

        with RlzArchive.open(rlz_path, config) as archive:
            rlz_stats = measure_retrieval(archive, requests)
            rlz_percent = archive.compression_percent(include_dictionary=True)
        with BlockedStore.open(zlib_path) as store:
            zlib_stats = measure_retrieval(store, requests)
            zlib_percent = store.compression_percent()

        print(
            f"rlz:   {rlz_percent:6.2f}% of original, "
            f"{rlz_stats.docs_per_second:8.0f} docs/s on the query log"
        )
        print(
            f"zlib:  {zlib_percent:6.2f}% of original, "
            f"{zlib_stats.docs_per_second:8.0f} docs/s on the query log"
        )

        # Serve the same load through the async front: every query is a
        # concurrent client session; popular documents requested by several
        # queries at once are decoded one time and shared.
        stats = asyncio.run(serve_queries(rlz_path, config, query_hits))
        print(
            f"async front: {stats['async_requests']:.0f} requests from "
            f"{len(queries)} concurrent sessions, "
            f"{stats['async_coalesced']:.0f} coalesced, "
            f"{stats['cache_hits']:.0f} cache hits"
        )

        # Show a couple of query-biased snippets fetched from the archive.
        with RlzArchive.open(rlz_path, config) as archive:
            for query in queries[:3]:
                results = index.search(query, top_k=1)
                if not results:
                    continue
                page = archive.get(results[0].doc_id).decode("utf-8", errors="replace")
                print(f"\nquery: {query!r}\n  {make_snippet(page, query)}")


if __name__ == "__main__":
    main()
