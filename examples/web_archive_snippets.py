"""Web-archive scenario: search a compressed crawl and build result snippets.

This is the workload the paper's introduction motivates: a retrieval system
stores its crawl compressed, answers queries from an inverted index, and must
fetch the matching documents quickly to build query-biased snippets.  The
script compares the RLZ store against a blocked-zlib store on exactly that
access pattern and prints per-system retrieval statistics.

Run with ``python examples/web_archive_snippets.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import DictionaryConfig, RlzCompressor, generate_gov_collection
from repro.baselines import build_blocked_baseline
from repro.bench import measure_retrieval
from repro.search import InvertedIndex, generate_queries, strip_markup
from repro.storage import BlockedStore, RlzStore


def make_snippet(document_text: str, query: str, width: int = 160) -> str:
    """A crude query-biased snippet: the first window containing a query term."""
    text = " ".join(strip_markup(document_text).split())
    lowered = text.lower()
    for term in query.lower().split():
        index = lowered.find(term)
        if index >= 0:
            start = max(0, index - width // 3)
            return "…" + text[start : start + width] + "…"
    return text[:width] + "…"


def main() -> None:
    collection = generate_gov_collection(
        num_documents=150, target_document_size=10 * 1024, seed=99
    )
    print(f"crawl: {len(collection)} pages, {collection.total_size / 1e6:.1f} MB")

    # Index the crawl and prepare a small query load.
    index = InvertedIndex.build(collection)
    queries = generate_queries(collection, num_queries=25, seed=7)

    with tempfile.TemporaryDirectory() as tmp:
        # The paper's system: RLZ with a small in-memory dictionary.
        compressor = RlzCompressor(
            dictionary_config=DictionaryConfig(
                size=collection.total_size // 50, sample_size=1024
            ),
            scheme="ZV",
        )
        rlz_path = RlzStore.write(compressor.compress(collection), Path(tmp) / "rlz.repro")
        # The conventional alternative: 0.5 MB zlib blocks.
        zlib_path = build_blocked_baseline(collection, Path(tmp) / "zlib.repro", "zlib", 0.5)

        # Build the query-log access pattern: top-5 results per query.
        requests = []
        for query in queries:
            requests.extend(result.doc_id for result in index.search(query, top_k=5))
        print(f"query load: {len(queries)} queries, {len(requests)} document fetches")

        with RlzStore.open(rlz_path) as store:
            rlz_stats = measure_retrieval(store, requests)
            rlz_percent = store.compression_percent(include_dictionary=True)
        with BlockedStore.open(zlib_path) as store:
            zlib_stats = measure_retrieval(store, requests)
            zlib_percent = store.compression_percent()

        print(
            f"rlz:   {rlz_percent:6.2f}% of original, "
            f"{rlz_stats.docs_per_second:8.0f} docs/s on the query log"
        )
        print(
            f"zlib:  {zlib_percent:6.2f}% of original, "
            f"{zlib_stats.docs_per_second:8.0f} docs/s on the query log"
        )

        # Show a couple of query-biased snippets fetched from the RLZ store.
        with RlzStore.open(rlz_path) as store:
            for query in queries[:3]:
                results = index.search(query, top_k=1)
                if not results:
                    continue
                page = store.get(results[0].doc_id).decode("utf-8", errors="replace")
                print(f"\nquery: {query!r}\n  {make_snippet(page, query)}")


if __name__ == "__main__":
    main()
