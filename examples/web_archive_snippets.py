"""Web-archive scenario: search a compressed crawl and build result snippets.

This is the workload the paper's introduction motivates: a retrieval system
stores its crawl compressed, answers queries from an inverted index, and must
fetch the matching documents quickly to build query-biased snippets.  The
script walks that access pattern through both generations of the stack:

* the **legacy in-memory leg** — an :class:`repro.search.InvertedIndex`
  ranks locally, whole documents are fetched through the
  :class:`repro.api.RlzArchive` facade (compared against a blocked-zlib
  store, and through the asyncio front where concurrent queries asking for
  the same popular documents coalesce into single decodes), and snippets
  are cut from the full decoded page;
* the **served leg** — the archive is built with
  ``SearchSpec(enabled=True)``, so a persistent posting-list sidecar rides
  next to the container; a server ranks the same queries over the wire
  (the ``SEARCH`` opcode) and builds its snippets by *windowed partial
  decode* (:meth:`repro.storage.RlzStore.get_window`), materialising only
  the bytes around each hit instead of whole pages.

Run with ``python examples/web_archive_snippets.py``.
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro import (
    ArchiveConfig,
    AsyncRlzArchive,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    RlzArchive,
    RlzClient,
    RlzStore,
    generate_gov_collection,
)
from repro.api import SearchSpec
from repro.baselines import build_blocked_baseline
from repro.bench import measure_retrieval
from repro.search import InvertedIndex, generate_queries, strip_markup
from repro.serve import BackgroundServer
from repro.storage import BlockedStore


def make_snippet(document_text: str, query: str, width: int = 160) -> str:
    """A crude query-biased snippet: the first window containing a query term."""
    text = " ".join(strip_markup(document_text).split())
    lowered = text.lower()
    for term in query.lower().split():
        index = lowered.find(term)
        if index >= 0:
            start = max(0, index - width // 3)
            return "…" + text[start : start + width] + "…"
    return text[:width] + "…"


async def serve_queries(path: Path, config: ArchiveConfig, query_hits):
    """Serve the query load concurrently: one client session per query."""
    async with AsyncRlzArchive.open(path, config) as front:
        await asyncio.gather(*(front.gather(doc_ids) for doc_ids in query_hits))
        return front.stats()


def main() -> None:
    collection = generate_gov_collection(
        num_documents=150, target_document_size=10 * 1024, seed=99
    )
    print(f"crawl: {len(collection)} pages, {collection.total_size / 1e6:.1f} MB")

    # Index the crawl in memory and prepare a small query load.
    index = InvertedIndex.build(collection)
    queries = generate_queries(collection, num_queries=25, seed=7)

    # search=SearchSpec(enabled=True) makes the build also emit the
    # persistent posting-list sidecar the served leg ranks against
    # (`repro compress --search-index` from a shell).
    config = ArchiveConfig(
        dictionary=DictionarySpec(size=collection.total_size // 50, sample_size=1024),
        encoding=EncodingSpec(scheme="ZV"),
        cache=CacheSpec(tier="lru", capacity=64),
        search=SearchSpec(enabled=True),
    )

    with tempfile.TemporaryDirectory() as tmp:
        # The paper's system behind the facade; one build call.
        rlz_path = Path(tmp) / "rlz.repro"
        RlzArchive.build(collection, config, rlz_path).close()
        # The conventional alternative: 0.5 MB zlib blocks.
        zlib_path = build_blocked_baseline(collection, Path(tmp) / "zlib.repro", "zlib", 0.5)

        # Build the query-log access pattern: top-5 results per query.
        query_hits = []
        requests = []
        for query in queries:
            hits = [result.doc_id for result in index.search(query, top_k=5)]
            query_hits.append(hits)
            requests.extend(hits)
        print(f"query load: {len(queries)} queries, {len(requests)} document fetches")

        with RlzArchive.open(rlz_path, config) as archive:
            rlz_stats = measure_retrieval(archive, requests)
            rlz_percent = archive.compression_percent(include_dictionary=True)
        with BlockedStore.open(zlib_path) as store:
            zlib_stats = measure_retrieval(store, requests)
            zlib_percent = store.compression_percent()

        print(
            f"rlz:   {rlz_percent:6.2f}% of original, "
            f"{rlz_stats.docs_per_second:8.0f} docs/s on the query log"
        )
        print(
            f"zlib:  {zlib_percent:6.2f}% of original, "
            f"{zlib_stats.docs_per_second:8.0f} docs/s on the query log"
        )

        # Serve the same load through the async front: every query is a
        # concurrent client session; popular documents requested by several
        # queries at once are decoded one time and shared.
        stats = asyncio.run(serve_queries(rlz_path, config, query_hits))
        print(
            f"async front: {stats['async_requests']:.0f} requests from "
            f"{len(queries)} concurrent sessions, "
            f"{stats['async_coalesced']:.0f} coalesced, "
            f"{stats['cache_hits']:.0f} cache hits"
        )

        # Legacy in-memory leg: rank locally, fetch the whole page, cut the
        # snippet client-side.
        print("\n-- legacy leg: local ranking, whole-document snippets --")
        with RlzArchive.open(rlz_path, config) as archive:
            for query in queries[:3]:
                results = index.search(query, top_k=1)
                if not results:
                    continue
                page = archive.get(results[0].doc_id).decode("utf-8", errors="replace")
                print(f"query: {query!r}\n  {make_snippet(page, query)}")

        # Served leg: the server ranks against the sidecar index and builds
        # query-biased snippets by windowed partial decode — the client
        # never fetches a whole page.
        print("\n-- served leg: SEARCH opcode, windowed snippet decode --")
        with BackgroundServer(rlz_path, config) as server:
            with RlzClient(*server.address) as client:
                for query in queries[:3]:
                    hits = client.search(query, top_k=1, snippet_chars=160)
                    if not hits:
                        continue
                    snippet = " ".join(
                        strip_markup(
                            hits[0].snippet.decode("utf-8", errors="replace")
                        ).split()
                    )
                    print(f"query: {query!r}\n  …{snippet}…")
                # The served ranking is the local ranking, score for score.
                for query in queries:
                    local = index.search(query, top_k=5)
                    remote = client.search(query, top_k=5)
                    assert [h.doc_id for h in remote] == [r.doc_id for r in local]
                    assert [h.score for h in remote] == [r.score for r in local]
                print(f"\nserved ranking == local ranking on all {len(queries)} queries")

        # What the windowed decode saves: decode-bytes for one snippet
        # window versus the whole page it comes from.
        with RlzStore.open(rlz_path) as raw_store:
            doc_id = query_hits[0][0]
            before = raw_store.decoded_bytes
            raw_store.get_window(doc_id, 0, 160)
            window_cost = raw_store.decoded_bytes - before
            before = raw_store.decoded_bytes
            full = raw_store.get(doc_id)
            full_cost = raw_store.decoded_bytes - before
            print(
                f"windowed decode: {window_cost:,} bytes materialised for a "
                f"160-byte snippet vs {full_cost:,} for the whole page "
                f"({full_cost / max(window_cost, 1):.0f}x less)"
            )
            assert window_cost < full_cost
            assert full == collection.document_by_id(doc_id).content


if __name__ == "__main__":
    main()
