"""Quickstart, networked: serve an RLZ archive over a socket.

The client/server variant of ``examples/quickstart.py``: the same archive,
but retrieval happens through :class:`repro.serve.RlzClient` talking to an
:class:`repro.serve.RlzServer` — the paper's "retrieve from the compressed
collection at serving time" story across a process/network boundary.

1. build an archive (identical to the local quickstart),
2. start a server for it (``BackgroundServer`` runs the asyncio server on
   its own thread; ``repro serve <archive>`` is the CLI equivalent),
3. connect an ``RlzClient`` — the same ``ArchiveView`` surface as a local
   ``RlzArchive``, so the retrieval code below is *identical* to local
   code — and round-trip documents,
4. read the machine-wide serving stats through the ``stats`` opcode.

Run with ``python examples/quickstart_networked.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    ArchiveConfig,
    ArchiveView,
    BackgroundServer,
    CacheSpec,
    DictionarySpec,
    EncodingSpec,
    RlzClient,
    generate_gov_collection,
)


def retrieve_some(view: ArchiveView, expected: dict) -> None:
    """Retrieval code written once against ArchiveView: this function would
    work unchanged with a local RlzArchive in place of the client."""
    doc_ids = view.doc_ids()
    single = view.get(doc_ids[7])
    assert single == expected[doc_ids[7]]
    print(f"random access: doc {doc_ids[7]} round-tripped ({len(single):,} bytes)")

    batch_ids = doc_ids[:10] + doc_ids[:2]  # duplicates are preserved
    batch = view.get_many(batch_ids)
    assert batch == [expected[doc_id] for doc_id in batch_ids]
    print(f"batched access: {len(batch)} documents, order preserved")

    total = sum(len(content) for _, content in view.iter_documents())
    assert total == sum(len(content) for content in expected.values())
    print(f"streamed scan: {total / 1e6:.1f} MB over the socket")


def main() -> None:
    collection = generate_gov_collection(
        num_documents=80, target_document_size=8 * 1024, seed=2026
    )
    expected = {document.doc_id: document.content for document in collection}
    config = ArchiveConfig(
        dictionary=DictionarySpec(size=64 * 1024, sample_size=1024),
        encoding=EncodingSpec(scheme="ZV"),
        cache=CacheSpec(tier="lru", capacity=32),
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "crawl.rlz"
        from repro import RlzArchive

        RlzArchive.build(collection, config, path).close()
        print(f"archive built: {path.stat().st_size / 1e6:.2f} MB on disk")

        # Serve it.  `repro serve crawl.rlz --cache lru` does the same from
        # a shell; BackgroundServer keeps this example single-process.
        with BackgroundServer(path, config) as server:
            host, port = server.address
            print(f"server listening on {host}:{port}")

            with RlzClient(host, port) as client:
                print(f"client connected: {len(client)} documents served remotely")
                retrieve_some(client, expected)
                rtt = client.ping()
                print(f"ping: {rtt * 1e6:.0f} us round trip")

                stats = client.stats()
                print(
                    f"server stats: {stats['server_requests']:.0f} requests, "
                    f"{stats['requests']:.0f} archive reads, "
                    f"{stats['cache_hits']:.0f} cache hits"
                )

            final = server.stats()
        print(
            f"shutdown: {final['server_connections_total']:.0f} connections served, "
            f"{final['server_errors']:.0f} errors"
        )


if __name__ == "__main__":
    main()
