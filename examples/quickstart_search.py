"""Quickstart, search: rank queries over a served compressed archive.

The search-serving variant of ``examples/quickstart_networked.py``: the
archive is built with ``SearchSpec(enabled=True)``, which writes a
persistent posting-list index (``<archive>.idx``) next to the container.
A server then answers the ``SEARCH`` opcode from that sidecar — BM25
top-k plus query-biased snippets decoded through the store's windowed
partial-decode path — so ranked retrieval never leaves the compressed
representation.

1. build an archive with its search sidecar
   (``repro compress crawl.warc crawl.rlz --search-index`` from a shell),
2. serve it and rank queries over the socket with
   :meth:`repro.serve.RlzClient.search`
   (``repro search QUERY --connect host:port`` is the CLI equivalent),
3. check the served ranking equals a local in-memory
   :class:`repro.search.InvertedIndex` score for score,
4. read the stats-exchange leg a sharded fan-out is built from
   (see ``examples/quickstart_partitioned.py`` for the fleet itself;
   :meth:`repro.serve.ClusterClient.search` merges per-shard top-k into
   the exact global ranking).

Run with ``python examples/quickstart_search.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    ArchiveConfig,
    BackgroundServer,
    DictionarySpec,
    EncodingSpec,
    RlzArchive,
    RlzClient,
    generate_gov_collection,
)
from repro.api import SearchSpec
from repro.search import InvertedIndex, generate_queries, index_sidecar_path


def main() -> None:
    collection = generate_gov_collection(
        num_documents=60, target_document_size=8 * 1024, seed=17
    )
    config = ArchiveConfig(
        dictionary=DictionarySpec(size=64 * 1024, sample_size=1024),
        encoding=EncodingSpec(scheme="ZV"),
        search=SearchSpec(enabled=True),
    )
    queries = generate_queries(collection, num_queries=8, seed=3)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "crawl.rlz"
        RlzArchive.build(collection, config, path).close()
        sidecar = index_sidecar_path(path)
        print(
            f"archive: {path.stat().st_size / 1e6:.2f} MB, "
            f"search index: {sidecar.stat().st_size / 1e3:.1f} KB"
        )

        reference = InvertedIndex.build(collection)

        with BackgroundServer(path, config) as server:
            host, port = server.address
            print(f"serving on {host}:{port}\n")

            with RlzClient(host, port) as client:
                # Ranked search over the wire, snippets included.
                query = queries[0]
                for rank, hit in enumerate(
                    client.search(query, top_k=3, snippet_chars=100), start=1
                ):
                    snippet = hit.snippet.decode("utf-8", errors="replace")
                    snippet = " ".join(snippet.split())
                    print(
                        f"{rank}. doc {hit.doc_id}  score {hit.score:.4f}\n"
                        f"   …{snippet}…"
                    )

                # The served ranking is exactly the local in-memory one.
                for query in queries:
                    local = reference.search(query, top_k=10)
                    remote = client.search(query, top_k=10)
                    assert [h.doc_id for h in remote] == [r.doc_id for r in local]
                    assert [h.score for h in remote] == [r.score for r in local]
                print(
                    f"\nserved == local ranking on {len(queries)} queries "
                    "(ids, scores and order)"
                )

                # The stats leg a ClusterClient uses to make sharded scores
                # collection-exact: shard-local df / doc counts, summed
                # across the fleet into GlobalStats.
                num_documents, total_length, frequencies = client.search_stats(
                    queries[0]
                )
                print(
                    f"stats leg: {num_documents} docs, "
                    f"{total_length} terms total, df={frequencies}"
                )


if __name__ == "__main__":
    main()
