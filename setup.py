"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in editable mode (``pip install -e .``) on
environments without the ``wheel`` package (offline build environments),
via the legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
