"""Package metadata and entry points.

Kept as a plain ``setup.py`` (rather than ``pyproject.toml``) so the package
installs in editable mode (``pip install -e .``) on environments without the
``wheel`` package (offline build environments), via the legacy
``setup.py develop`` code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro-rlz",
    version="0.2.0",
    description=(
        "Reproduction of 'Relative Lempel-Ziv Factorization for Efficient "
        "Storage and Retrieval of Web Collections' (PVLDB 2011)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy>=1.22",
    ],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            "repro-corpus=repro.cli:corpus_main",
            "repro-compress=repro.cli:compress_main",
            "repro-bench=repro.cli:bench_main",
        ]
    },
)
